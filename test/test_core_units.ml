(* Unit tests for the core library's pure components: partitioning, the
   commit queue, and protocol messages. *)

open Spinnaker
module Lsn = Storage.Lsn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let lsn e s = Lsn.make ~epoch:e ~seq:s

(* --- partition --------------------------------------------------------------- *)

let part ?(nodes = 10) ?(replication = 3) ?(key_space = 100_000) () =
  Partition.create ~nodes ~replication ~key_space

let test_partition_shape () =
  let p = part () in
  check_int "one range per node" 10 (Partition.ranges p);
  check_int "replication" 3 (Partition.replication p)

let test_partition_chained_declustering () =
  let p = part () in
  Alcotest.(check (list int)) "cohort 0" [ 0; 1; 2 ] (Partition.cohort p ~range:0);
  Alcotest.(check (list int)) "cohort 8 wraps" [ 8; 9; 0 ] (Partition.cohort p ~range:8);
  Alcotest.(check (list int)) "cohort 9 wraps" [ 9; 0; 1 ] (Partition.cohort p ~range:9)

let test_partition_node_ranges_inverse () =
  let p = part () in
  for node = 0 to 9 do
    let ranges = Partition.ranges_of_node p ~node in
    check_int "member of 3 cohorts" 3 (List.length ranges);
    List.iter
      (fun r ->
        check_bool "cohort contains node" true (List.mem node (Partition.cohort p ~range:r)))
      ranges
  done

let test_partition_bounds_cover_space () =
  let p = part () in
  let lo0, _ = Partition.range_bounds p ~range:0 in
  let _, hi9 = Partition.range_bounds p ~range:9 in
  Alcotest.(check string) "starts at 0" (Partition.key_of_int p 0) lo0;
  Alcotest.(check string) "ends at key_space" "100000" hi9

let prop_route_within_cohorted_range =
  QCheck.Test.make ~name:"partition: every key routes to a valid range" ~count:500
    (QCheck.int_bound 99_999) (fun k ->
      let p = part () in
      let r = Partition.route p (Partition.key_of_int p k) in
      r >= 0 && r < 10 && List.length (Partition.cohort p ~range:r) = 3)

let prop_route_respects_bounds =
  QCheck.Test.make ~name:"partition: routed range's bounds contain the key" ~count:500
    (QCheck.int_bound 99_999) (fun k ->
      let p = part () in
      let key = Partition.key_of_int p k in
      let r = Partition.route p key in
      let lo, hi = Partition.range_bounds p ~range:r in
      String.compare lo key <= 0 && String.compare key hi < 0)

let prop_key_encoding_order_preserving =
  QCheck.Test.make ~name:"partition: key encoding preserves numeric order" ~count:300
    QCheck.(pair (int_bound 99_999) (int_bound 99_999))
    (fun (a, b) ->
      let p = part () in
      compare a b = compare (Partition.key_of_int p a) (Partition.key_of_int p b))

(* --- commit queue -------------------------------------------------------------- *)

let add q ~l ?reply () =
  Commit_queue.add q ~lsn:l
    ~op:(Storage.Log_record.Put { key = "k"; col = "c"; value = "v"; version = l.Lsn.seq })
    ~timestamp:0 ?reply ()

let test_queue_commit_order_and_quorum () =
  let q = Commit_queue.create () in
  add q ~l:(lsn 1 1) ();
  add q ~l:(lsn 1 2) ();
  add q ~l:(lsn 1 3) ();
  (* Nothing commits unforced. *)
  Commit_queue.add_ack q ~from:7 ~upto:(lsn 1 3);
  check_int "unforced" 0 (List.length (Commit_queue.pop_committable q ~acks_needed:1));
  Commit_queue.mark_forced_upto q (lsn 1 3);
  let committed = Commit_queue.pop_committable q ~acks_needed:1 in
  check_int "all commit in order" 3 (List.length committed);
  check_bool "ascending" true
    (List.for_all2
       (fun (a : Commit_queue.entry) s -> Lsn.equal a.lsn (lsn 1 s))
       committed [ 1; 2; 3 ])

let test_queue_commit_stops_at_gap () =
  let q = Commit_queue.create () in
  add q ~l:(lsn 1 1) ();
  add q ~l:(lsn 1 2) ();
  Commit_queue.mark_forced_upto q (lsn 1 2);
  (* Only the second entry is acked: commit order must stall at entry 1. *)
  let e2_only = Commit_queue.create () in
  ignore e2_only;
  Commit_queue.add_ack q ~from:9 ~upto:(lsn 1 2);
  (* ack covers both here; emulate a gap instead via acks_needed=2 on entry 1 *)
  let q2 = Commit_queue.create () in
  add q2 ~l:(lsn 1 1) ();
  add q2 ~l:(lsn 1 2) ();
  Commit_queue.mark_forced_upto q2 (lsn 1 2);
  (* Hand-mark only entry 2 as acked. *)
  List.iter
    (fun (e : Commit_queue.entry) -> if Lsn.equal e.lsn (lsn 1 2) then e.ackers <- [ 5 ])
    (Commit_queue.to_list q2);
  check_int "gap blocks commit" 0 (List.length (Commit_queue.pop_committable q2 ~acks_needed:1));
  check_int "entries retained" 2 (Commit_queue.length q2)

let test_queue_duplicate_acks_counted_once () =
  let q = Commit_queue.create () in
  add q ~l:(lsn 1 1) ();
  Commit_queue.mark_forced_upto q (lsn 1 1);
  Commit_queue.add_ack q ~from:3 ~upto:(lsn 1 1);
  Commit_queue.add_ack q ~from:3 ~upto:(lsn 1 1);
  check_int "one acker twice is not quorum of 2" 0
    (List.length (Commit_queue.pop_committable q ~acks_needed:2));
  Commit_queue.add_ack q ~from:4 ~upto:(lsn 1 1);
  check_int "two distinct ackers" 1 (List.length (Commit_queue.pop_committable q ~acks_needed:2))

let test_queue_pop_upto () =
  let q = Commit_queue.create () in
  List.iter (fun s -> add q ~l:(lsn 1 s) ()) [ 1; 2; 3; 4 ];
  let popped = Commit_queue.pop_upto q (lsn 1 2) in
  check_int "popped prefix" 2 (List.length popped);
  check_int "rest stays" 2 (Commit_queue.length q)

let test_queue_drop_above () =
  let q = Commit_queue.create () in
  List.iter (fun s -> add q ~l:(lsn 1 s) ()) [ 1; 2; 3; 4 ];
  let dropped = Commit_queue.drop_above q (lsn 1 2) in
  check_int "dropped suffix" 2 (List.length dropped);
  check_int "prefix stays" 2 (Commit_queue.length q)

let test_queue_latest_version_overlay () =
  let q = Commit_queue.create () in
  Commit_queue.add q ~lsn:(lsn 1 1)
    ~op:(Storage.Log_record.Put { key = "k"; col = "c"; value = "a"; version = 5 })
    ~timestamp:0 ();
  Commit_queue.add q ~lsn:(lsn 1 2)
    ~op:(Storage.Log_record.Put { key = "k"; col = "c"; value = "b"; version = 6 })
    ~timestamp:0 ();
  Alcotest.(check (option int)) "newest pending version" (Some 6)
    (Commit_queue.latest_version_for q ("k", "c"));
  Alcotest.(check (option int)) "absent coord" None
    (Commit_queue.latest_version_for q ("other", "c"))

let prop_queue_commits_exactly_once =
  QCheck.Test.make ~name:"commit queue: every entry commits exactly once" ~count:100
    QCheck.(int_range 1 50)
    (fun n ->
      let q = Commit_queue.create () in
      for s = 1 to n do
        add q ~l:(lsn 1 s) ()
      done;
      Commit_queue.mark_forced_upto q (lsn 1 n);
      Commit_queue.add_ack q ~from:1 ~upto:(lsn 1 n);
      let first = Commit_queue.pop_committable q ~acks_needed:1 in
      let second = Commit_queue.pop_committable q ~acks_needed:1 in
      List.length first = n && second = [] && Commit_queue.is_empty q)

(* --- messages -------------------------------------------------------------------- *)

let test_message_classification () =
  check_bool "get is read" false
    (Message.is_write (Message.Get { key = "k"; col = "c"; consistent = true; token = Lsn.zero }));
  check_bool "put is write" true (Message.is_write (Message.Put { key = "k"; col = "c"; value = "v" }));
  check_bool "cond delete is write" true
    (Message.is_write (Message.Conditional_delete { key = "k"; col = "c"; expected = 1 }))

let test_message_new_ops_classified () =
  check_bool "scan is read" false
    (Message.is_write
       (Message.Scan
          { start_key = "a"; end_key = "b"; limit = 10; consistent = true; token = Lsn.zero }));
  check_bool "txn is write" true (Message.is_write (Message.Txn_put { rows = [ ("k", "c", "v") ] }));
  Alcotest.(check string)
    "txn routes by first key" "k"
    (Message.key_of_op (Message.Txn_put { rows = [ ("k", "c", "v"); ("k2", "c", "v") ] }));
  Alcotest.(check string)
    "scan routes by start key" "s"
    (Message.key_of_op
       (Message.Scan
          { start_key = "s"; end_key = "t"; limit = 1; consistent = false; token = Lsn.zero }))

let test_batch_op_helpers () =
  let batch =
    Storage.Log_record.Batch
      [
        Storage.Log_record.Put { key = "a"; col = "c"; value = "1"; version = 1 };
        Storage.Log_record.Delete { key = "b"; col = "c"; version = 2 };
      ]
  in
  check_int "flatten" 2 (List.length (Storage.Log_record.flatten batch));
  Alcotest.(check (pair string string)) "coord is first" ("a", "c") (Storage.Log_record.op_coord batch);
  let cells = Storage.Log_record.cells_of_write batch ~lsn:(lsn 1 9) ~timestamp:7 in
  check_int "two cells" 2 (List.length cells);
  check_bool "delete is tombstone" true
    (match cells with [ _; (_, cell) ] -> Storage.Row.is_tombstone cell | _ -> false);
  check_bool "shared lsn" true
    (List.for_all (fun (_, (c : Storage.Row.cell)) -> Lsn.equal c.lsn (lsn 1 9)) cells)

let test_message_sizes_scale () =
  let small = Message.size (Message.Request { client = 1; request_id = 1; op = Message.Put { key = "k"; col = "c"; value = "x" } }) in
  let big =
    Message.size
      (Message.Request
         { client = 1; request_id = 1; op = Message.Put { key = "k"; col = "c"; value = String.make 4096 'x' } })
  in
  check_bool "4KB put is ~4KB bigger" true (big - small > 4000)

let suite =
  [
    Alcotest.test_case "partition: shape" `Quick test_partition_shape;
    Alcotest.test_case "partition: chained declustering (Fig 2)" `Quick
      test_partition_chained_declustering;
    Alcotest.test_case "partition: node<->range inverse" `Quick test_partition_node_ranges_inverse;
    Alcotest.test_case "partition: bounds cover key space" `Quick test_partition_bounds_cover_space;
    QCheck_alcotest.to_alcotest prop_route_within_cohorted_range;
    QCheck_alcotest.to_alcotest prop_route_respects_bounds;
    QCheck_alcotest.to_alcotest prop_key_encoding_order_preserving;
    Alcotest.test_case "queue: quorum + order" `Quick test_queue_commit_order_and_quorum;
    Alcotest.test_case "queue: gap blocks commit" `Quick test_queue_commit_stops_at_gap;
    Alcotest.test_case "queue: duplicate acks" `Quick test_queue_duplicate_acks_counted_once;
    Alcotest.test_case "queue: pop_upto" `Quick test_queue_pop_upto;
    Alcotest.test_case "queue: drop_above" `Quick test_queue_drop_above;
    Alcotest.test_case "queue: version overlay" `Quick test_queue_latest_version_overlay;
    QCheck_alcotest.to_alcotest prop_queue_commits_exactly_once;
    Alcotest.test_case "message: read/write classification" `Quick test_message_classification;
    Alcotest.test_case "message: size accounting" `Quick test_message_sizes_scale;
    Alcotest.test_case "message: txn/scan classification" `Quick test_message_new_ops_classified;
    Alcotest.test_case "log record: batch helpers" `Quick test_batch_op_helpers;
  ]
