(* Tests for the storage engine: LSNs, memtable, bloom, SSTables,
   compaction, WAL (group commit, crash semantics, rollover), skipped-LSN
   lists, and store recovery. *)

module Lsn = Storage.Lsn
module Row = Storage.Row
module Memtable = Storage.Memtable
module Sstable = Storage.Sstable
module Wal = Storage.Wal
module Log_record = Storage.Log_record
module Store = Storage.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str_opt = Alcotest.(check (option string))

let lsn e s = Lsn.make ~epoch:e ~seq:s

let cell ?(value = Some "v") ?(version = 1) ?(timestamp = 0) l : Row.cell =
  { value; version; lsn = l; timestamp; txn_ts = None }

(* --- LSN ---------------------------------------------------------------- *)

let test_lsn_ordering () =
  check_bool "seq order" true Lsn.(lsn 1 2 < lsn 1 3);
  check_bool "epoch dominates" true Lsn.(lsn 1 100 < lsn 2 1);
  check_bool "equal" true (Lsn.equal (lsn 2 5) (lsn 2 5));
  check_bool "zero smallest" true Lsn.(Lsn.zero < lsn 1 1)

let test_lsn_next_and_epoch () =
  let l = lsn 1 21 in
  check_bool "next" true (Lsn.equal (Lsn.next l) (lsn 1 22));
  check_bool "with_epoch keeps seq" true (Lsn.equal (Lsn.with_epoch ~epoch:2 l) (lsn 2 21));
  Alcotest.(check string) "pp" "1.21" (Lsn.to_string l)

let prop_lsn_compare_total_order =
  QCheck.Test.make ~name:"lsn compare is a total order consistent with pairs" ~count:300
    QCheck.(pair (pair small_nat small_nat) (pair small_nat small_nat))
    (fun ((e1, s1), (e2, s2)) ->
      let a = lsn e1 s1 and b = lsn e2 s2 in
      let c = Lsn.compare a b in
      if e1 < e2 then c < 0
      else if e1 > e2 then c > 0
      else compare s1 s2 = compare c 0 || c = compare s1 s2 || compare c 0 = compare s1 s2)

(* --- memtable ------------------------------------------------------------ *)

let test_memtable_put_get () =
  let m = Memtable.create () in
  Memtable.put m ("k1", "c") (cell ~value:(Some "a") (lsn 1 1));
  Memtable.put m ("k2", "c") (cell ~value:(Some "b") (lsn 1 2));
  check_str_opt "k1" (Some "a")
    (Option.bind (Memtable.get m ("k1", "c")) (fun c -> c.Row.value));
  check_str_opt "k2" (Some "b")
    (Option.bind (Memtable.get m ("k2", "c")) (fun c -> c.Row.value));
  check_int "size" 2 (Memtable.size m)

let test_memtable_overwrite_default () =
  let m = Memtable.create () in
  Memtable.put m ("k", "c") (cell ~value:(Some "old") (lsn 1 5));
  Memtable.put m ("k", "c") (cell ~value:(Some "new") (lsn 1 2));
  (* Default policy: incoming always wins (LSN-ordered apply upstream). *)
  check_str_opt "incoming wins" (Some "new")
    (Option.bind (Memtable.get m ("k", "c")) (fun c -> c.Row.value))

let test_memtable_newer_guard () =
  let m = Memtable.create () in
  Memtable.put m ("k", "c") (cell ~value:(Some "newer") ~timestamp:10 (lsn 1 5));
  Memtable.put m ~newer:Row.newer_by_timestamp ("k", "c")
    (cell ~value:(Some "older") ~timestamp:5 (lsn 1 9));
  check_str_opt "older timestamp rejected" (Some "newer")
    (Option.bind (Memtable.get m ("k", "c")) (fun c -> c.Row.value))

let test_memtable_sorted_iteration () =
  let m = Memtable.create () in
  List.iter
    (fun k -> Memtable.put m (k, "c") (cell (lsn 1 1)))
    [ "b"; "a"; "d"; "c" ];
  let keys = List.map (fun ((k, _), _) -> k) (Memtable.to_sorted_list m) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "d" ] keys

let test_memtable_max_lsn_and_clear () =
  let m = Memtable.create () in
  Memtable.put m ("a", "c") (cell (lsn 1 7));
  Memtable.put m ("b", "c") (cell (lsn 1 3));
  check_bool "max lsn" true (Lsn.equal (Memtable.max_lsn m) (lsn 1 7));
  Memtable.clear m;
  check_bool "empty" true (Memtable.is_empty m);
  check_int "bytes reset" 0 (Memtable.approx_bytes m)

let prop_memtable_matches_model =
  QCheck.Test.make ~name:"memtable behaves like a map (model-based)" ~count:100
    QCheck.(list (pair (pair (string_of_size (Gen.return 2)) (string_of_size (Gen.return 1))) small_nat))
    (fun ops ->
      let m = Memtable.create () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (coord, v) ->
          let c = cell ~value:(Some (string_of_int v)) (lsn 1 i) in
          Memtable.put m coord c;
          Hashtbl.replace model coord (string_of_int v))
        ops;
      Hashtbl.fold
        (fun coord expected acc ->
          acc
          && Option.bind (Memtable.get m coord) (fun c -> c.Row.value) = Some expected)
        model true
      && Memtable.size m = Hashtbl.length model)

(* --- bloom --------------------------------------------------------------- *)

let test_bloom_no_false_negatives () =
  let b = Storage.Bloom.create ~expected:100 () in
  let keys = List.init 100 (fun i -> Printf.sprintf "key-%d" i) in
  List.iter (Storage.Bloom.add b) keys;
  List.iter (fun k -> check_bool k true (Storage.Bloom.mem b k)) keys

let test_bloom_filters_most_absent () =
  let b = Storage.Bloom.create ~expected:1000 ~false_positive_rate:0.01 () in
  for i = 0 to 999 do
    Storage.Bloom.add b (Printf.sprintf "present-%d" i)
  done;
  let fp = ref 0 in
  for i = 0 to 999 do
    if Storage.Bloom.mem b (Printf.sprintf "absent-%d" i) then incr fp
  done;
  check_bool (Printf.sprintf "fp rate %d/1000" !fp) true (!fp < 50)

let prop_bloom_never_false_negative =
  QCheck.Test.make ~name:"bloom: added keys always found" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (string_of_size (Gen.int_range 1 10)))
    (fun keys ->
      let b = Storage.Bloom.create ~expected:(List.length keys) () in
      List.iter (Storage.Bloom.add b) keys;
      List.for_all (Storage.Bloom.mem b) keys)

(* --- sstable -------------------------------------------------------------- *)

let sorted_entries n =
  List.init n (fun i ->
      ((Printf.sprintf "k%04d" i, "c"), cell ~value:(Some (string_of_int i)) (lsn 1 (i + 1))))

let test_sstable_build_get () =
  let t = Sstable.build (sorted_entries 100) in
  check_int "count" 100 (Sstable.count t);
  check_str_opt "hit" (Some "42")
    (Option.bind (Sstable.get t ("k0042", "c")) (fun c -> c.Row.value));
  check_bool "miss" true (Sstable.get t ("k9999", "c") = None);
  check_bool "miss col" true (Sstable.get t ("k0042", "z") = None)

let test_sstable_lsn_tags () =
  let t = Sstable.build (sorted_entries 10) in
  check_bool "min" true (Lsn.equal (Sstable.min_lsn t) (lsn 1 1));
  check_bool "max" true (Lsn.equal (Sstable.max_lsn t) (lsn 1 10));
  check_str_opt "min key" (Some "k0000") (Sstable.min_key t);
  check_str_opt "max key" (Some "k0009") (Sstable.max_key t)

let test_sstable_rejects_unsorted () =
  let entries = [ (("b", "c"), cell (lsn 1 1)); (("a", "c"), cell (lsn 1 2)) ] in
  Alcotest.check_raises "unsorted input" (Invalid_argument "Sstable.build: entries not strictly ascending")
    (fun () -> ignore (Sstable.build entries))

let test_sstable_lsn_range_extraction () =
  let t = Sstable.build (sorted_entries 20) in
  let cells = Sstable.cells_with_lsn_in t ~above:(lsn 1 5) ~upto:(lsn 1 8) in
  check_int "three cells in (5,8]" 3 (List.length cells);
  check_bool "ascending lsn" true
    (List.for_all2
       (fun (_, (a : Row.cell)) (_, (b : Row.cell)) -> Lsn.(a.lsn <= b.lsn))
       (List.filteri (fun i _ -> i < 2) cells)
       (List.tl cells))

let prop_sstable_lookup_matches_input =
  QCheck.Test.make ~name:"sstable: every built entry is retrievable" ~count:50
    QCheck.(int_range 1 200)
    (fun n ->
      let entries = sorted_entries n in
      let t = Sstable.build entries in
      List.for_all
        (fun (coord, (c : Row.cell)) ->
          match Sstable.get t coord with
          | Some got -> got.Row.value = c.value
          | None -> false)
        entries)

(* --- compaction ------------------------------------------------------------ *)

let test_compaction_newest_wins () =
  let t1 = Sstable.build [ (("k", "c"), cell ~value:(Some "old") (lsn 1 1)) ] in
  let t2 = Sstable.build [ (("k", "c"), cell ~value:(Some "new") (lsn 1 9)) ] in
  let merged = Storage.Compaction.merge ~newer:Row.newer_by_lsn [ t1; t2 ] in
  check_int "one entry" 1 (Sstable.count merged);
  check_str_opt "newest" (Some "new")
    (Option.bind (Sstable.get merged ("k", "c")) (fun c -> c.Row.value))

let test_compaction_drops_tombstones () =
  let t1 = Sstable.build [ (("k", "c"), cell ~value:(Some "x") (lsn 1 1)) ] in
  let t2 = Sstable.build [ (("k", "c"), Row.tombstone ~version:2 ~lsn:(lsn 1 5) ~timestamp:0) ] in
  let merged = Storage.Compaction.merge ~newer:Row.newer_by_lsn ~drop_tombstones:true [ t1; t2 ] in
  check_int "tombstone gone" 0 (Sstable.count merged);
  let kept = Storage.Compaction.merge ~newer:Row.newer_by_lsn [ t1; t2 ] in
  check_int "tombstone kept without flag" 1 (Sstable.count kept)

let prop_compaction_equals_map_merge =
  QCheck.Test.make ~name:"compaction merge = newest cell per coordinate" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 60) (pair (int_bound 20) small_nat))
    (fun writes ->
      (* Build three tables from three slices of a write sequence. *)
      let indexed = List.mapi (fun i (k, v) -> (i, k, v)) writes in
      let slice p =
        List.filter_map
          (fun (i, k, v) ->
            if i mod 3 = p then
              Some ((Printf.sprintf "k%02d" k, "c"), cell ~value:(Some (string_of_int v)) (lsn 1 (i + 1)))
            else None)
          indexed
        |> List.sort_uniq (fun (a, _) (b, _) -> Row.compare_coord a b)
      in
      let tables = List.map (fun p -> Sstable.build (slice p)) [ 0; 1; 2 ] in
      let merged = Storage.Compaction.merge ~newer:Row.newer_by_lsn tables in
      (* Model: newest write per key across the whole sequence... but within a
         slice duplicates were dropped by sort_uniq keeping an arbitrary one,
         so compare against the per-table contents instead. *)
      let model = Hashtbl.create 16 in
      List.iter
        (fun t ->
          Sstable.iter t (fun coord c ->
              match Hashtbl.find_opt model coord with
              | Some (existing : Row.cell) when Row.newer_by_lsn existing c -> ()
              | _ -> Hashtbl.replace model coord c))
        tables;
      Hashtbl.fold
        (fun coord (c : Row.cell) acc ->
          acc && (match Sstable.get merged coord with Some got -> Lsn.equal got.Row.lsn c.lsn | None -> false))
        model true)

(* --- WAL -------------------------------------------------------------------- *)

let make_wal ?(disk = Sim.Disk_model.Ssd) ?(max_batch = 16) () =
  let engine = Sim.Engine.create () in
  let resource = Sim.Resource.create engine ~name:"d" () in
  let model = Sim.Disk_model.create disk in
  let wal =
    Wal.create engine ~disk:resource ~model ~rng:(Sim.Rng.create 1) ~max_batch ()
  in
  (engine, wal)

let put_record ~cohort ~l key =
  Log_record.write ~cohort ~lsn:l ~timestamp:0
    (Log_record.Put { key; col = "c"; value = "v"; version = 1 })

let test_wal_force_makes_durable () =
  let engine, wal = make_wal () in
  Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 1) "a");
  check_int "not durable yet" 0 (Wal.durable_count wal);
  let forced = ref false in
  Wal.force wal (fun () -> forced := true);
  Sim.Engine.run engine;
  check_bool "callback" true !forced;
  check_int "durable" 1 (Wal.durable_count wal)

let test_wal_crash_loses_tail () =
  let engine, wal = make_wal () in
  Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 1) "a");
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 2) "b");
  Wal.crash wal;
  Sim.Engine.run engine;
  check_int "only forced record survives" 1 (Wal.durable_count wal);
  check_bool "lst from durable log" true (Lsn.equal (Wal.last_write_lsn wal ~cohort:0) (lsn 1 1))

let test_wal_group_commit_batches () =
  let engine, wal = make_wal ~max_batch:64 () in
  (* Submit 32 appends+forces in the same instant: group commit should need
     far fewer device forces than 32. *)
  let acked = ref 0 in
  for i = 1 to 32 do
    Wal.append_and_force wal (put_record ~cohort:0 ~l:(lsn 1 i) "k") (fun () -> incr acked)
  done;
  Sim.Engine.run engine;
  check_int "all acked" 32 !acked;
  check_bool
    (Printf.sprintf "few forces (%d)" (Wal.forces_issued wal))
    true
    (Wal.forces_issued wal <= 2)

let test_wal_max_batch_bounds_forces () =
  let engine, wal = make_wal ~max_batch:1 () in
  let acked = ref 0 in
  for i = 1 to 8 do
    Wal.append_and_force wal (put_record ~cohort:0 ~l:(lsn 1 i) "k") (fun () -> incr acked)
  done;
  Sim.Engine.run engine;
  check_int "all acked" 8 !acked;
  check_int "one force per record" 8 (Wal.forces_issued wal)

let test_wal_crash_drops_waiters () =
  let engine, wal = make_wal () in
  let fired = ref false in
  Wal.append_and_force wal (put_record ~cohort:0 ~l:(lsn 1 1) "a") (fun () -> fired := true);
  Wal.crash wal;
  Sim.Engine.run engine;
  check_bool "waiter dropped on crash" false !fired

let test_wal_per_cohort_accounting () =
  let engine, wal = make_wal () in
  Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 1) "a");
  Wal.append wal (put_record ~cohort:1 ~l:(lsn 1 7) "b");
  Wal.append wal (Log_record.commit_upto ~cohort:0 (lsn 1 1));
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  check_bool "c0 lst" true (Lsn.equal (Wal.last_write_lsn wal ~cohort:0) (lsn 1 1));
  check_bool "c1 lst" true (Lsn.equal (Wal.last_write_lsn wal ~cohort:1) (lsn 1 7));
  check_bool "c0 cmt" true (Lsn.equal (Wal.last_commit_marker wal ~cohort:0) (lsn 1 1));
  check_bool "c1 cmt zero" true (Lsn.equal (Wal.last_commit_marker wal ~cohort:1) Lsn.zero)

let test_wal_gc_rolls_over () =
  let engine, wal = make_wal () in
  for i = 1 to 10 do
    Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 i) (Printf.sprintf "k%d" i))
  done;
  Wal.append wal (put_record ~cohort:1 ~l:(lsn 1 3) "other");
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  Wal.gc_cohort wal ~cohort:0 ~upto:(lsn 1 7);
  check_int "writes in (7,10] + cohort 1" 4 (Wal.durable_count wal);
  Alcotest.(check (option string))
    "floor is 8"
    (Some "1.8")
    (Option.map Lsn.to_string (Wal.min_available_write_lsn wal ~cohort:0));
  check_bool "cohort 1 untouched" true
    (Lsn.equal (Wal.last_write_lsn wal ~cohort:1) (lsn 1 3))

let test_wal_writes_in_range_sorted_dedup () =
  let engine, wal = make_wal () in
  Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 2) "b");
  Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 1) "a");
  Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 2) "b-dup");
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  let writes = Wal.durable_writes_in wal ~cohort:0 ~above:Lsn.zero ~upto:(lsn 1 99) in
  check_int "dedup by lsn" 2 (List.length writes);
  check_bool "ascending" true
    (match writes with
    | (a, _, _, _) :: (b, _, _, _) :: _ -> Lsn.(a < b)
    | _ -> false)

let test_wal_wipe_loses_everything () =
  let engine, wal = make_wal () in
  Wal.append_and_force wal (put_record ~cohort:0 ~l:(lsn 1 1) "a") (fun () -> ());
  Sim.Engine.run engine;
  check_int "durable before wipe" 1 (Wal.durable_count wal);
  Wal.wipe wal;
  check_int "nothing after disk loss" 0 (Wal.durable_count wal);
  check_bool "lst reset" true (Lsn.equal (Wal.last_write_lsn wal ~cohort:0) Lsn.zero)

let test_wal_batch_service_scales_with_bytes () =
  (* A batch of large records takes longer on the device than small ones:
     the magnetic model charges bytes/bandwidth on top of the seek. *)
  let run value_bytes =
    let engine = Sim.Engine.create () in
    let disk = Sim.Resource.create engine ~name:"d" () in
    let model = Sim.Disk_model.create Sim.Disk_model.Magnetic in
    let wal = Wal.create engine ~disk ~model ~rng:(Sim.Rng.create 1) ~max_batch:64 () in
    for i = 1 to 32 do
      Wal.append wal
        (Log_record.write ~cohort:0 ~lsn:(lsn 1 i) ~timestamp:0
           (Log_record.Put { key = "k"; col = "c"; value = String.make value_bytes 'x'; version = i }))
    done;
    let done_at = ref Sim.Sim_time.zero in
    Wal.force wal (fun () -> done_at := Sim.Engine.now engine);
    Sim.Engine.run engine;
    Sim.Sim_time.time_to_us !done_at
  in
  check_bool "1MB batch slower than 32B batch" true (run 32_768 > run 32)

(* --- skipped LSNs ------------------------------------------------------------ *)

let test_skipped_lsns () =
  let s = Storage.Skipped_lsns.create () in
  Storage.Skipped_lsns.add s [ lsn 1 22; lsn 1 25 ];
  check_bool "mem" true (Storage.Skipped_lsns.mem s (lsn 1 22));
  check_bool "not mem" false (Storage.Skipped_lsns.mem s (lsn 1 23));
  Storage.Skipped_lsns.gc_upto s (lsn 1 22);
  check_bool "gc removed" false (Storage.Skipped_lsns.mem s (lsn 1 22));
  check_bool "gc kept later" true (Storage.Skipped_lsns.mem s (lsn 1 25));
  check_int "count" 1 (Storage.Skipped_lsns.count s)

(* --- store -------------------------------------------------------------------- *)

let make_store ?(flush_bytes = 4 * 1024 * 1024) () =
  let engine, wal = make_wal () in
  let store = Store.create ~cohort:0 ~wal ~flush_bytes () in
  (engine, wal, store)

let apply_put store ~l key value =
  Store.apply store ~lsn:l ~timestamp:0
    (Log_record.Put { key; col = "c"; value; version = l.Lsn.seq })

let test_store_apply_read () =
  let _, _, store = make_store () in
  apply_put store ~l:(lsn 1 1) "k" "v1";
  check_str_opt "read" (Some "v1")
    (Option.bind (Store.read store ("k", "c")) (fun c -> c.Row.value));
  check_int "version" 1 (Store.current_version store ("k", "c"))

let test_store_delete_hides_but_versions () =
  let _, _, store = make_store () in
  apply_put store ~l:(lsn 1 1) "k" "v1";
  Store.apply store ~lsn:(lsn 1 2) ~timestamp:0
    (Log_record.Delete { key = "k"; col = "c"; version = 2 });
  check_bool "read sees nothing" true (Store.read store ("k", "c") = None);
  check_int "tombstone version visible" 2 (Store.current_version store ("k", "c"))

let test_store_flush_and_read_from_sstable () =
  let _, _, store = make_store () in
  for i = 1 to 50 do
    apply_put store ~l:(lsn 1 i) (Printf.sprintf "k%02d" i) (Printf.sprintf "v%d" i)
  done;
  Store.flush store;
  check_int "memtable drained" 0 (Store.memtable_size store);
  check_int "one sstable" 1 (Store.sstable_count store);
  check_str_opt "served from sstable" (Some "v17")
    (Option.bind (Store.read store ("k17", "c")) (fun c -> c.Row.value));
  check_bool "flushed_upto" true (Lsn.equal (Store.flushed_upto store) (lsn 1 50))

let test_store_auto_flush_and_compaction () =
  let _, _, store = make_store ~flush_bytes:2_000 () in
  for i = 1 to 400 do
    apply_put store ~l:(lsn 1 i) (Printf.sprintf "k%03d" (i mod 40)) "valuevaluevalue"
  done;
  check_bool "compaction bounded fan-in" true (Store.sstable_count store <= 4);
  (* Newest value still wins across tables. *)
  check_str_opt "read latest" (Some "valuevaluevalue")
    (Option.bind (Store.read store ("k007", "c")) (fun c -> c.Row.value))

let test_store_recovery_replays_to_cmt () =
  let engine, wal, store = make_store () in
  (* Write 5 records through the wal as a cohort would. *)
  for i = 1 to 5 do
    Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 i) (Printf.sprintf "k%d" i))
  done;
  Wal.append wal (Log_record.commit_upto ~cohort:0 (lsn 1 3));
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  Store.crash store;
  Wal.crash wal;
  let cmt, lst = Store.recover store in
  check_bool "cmt from marker" true (Lsn.equal cmt (lsn 1 3));
  check_bool "lst from log" true (Lsn.equal lst (lsn 1 5));
  check_bool "committed visible" true (Store.read store ("k3", "c") <> None);
  check_bool "uncommitted invisible" true (Store.read store ("k4", "c") = None)

let test_store_recovery_skips_truncated () =
  let engine, wal, store = make_store () in
  for i = 1 to 3 do
    Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 i) (Printf.sprintf "k%d" i))
  done;
  Wal.append wal (Log_record.commit_upto ~cohort:0 (lsn 1 3));
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  (* Logically truncate 1.2: future recovery must not re-apply it. *)
  Storage.Skipped_lsns.add (Store.skipped store) [ lsn 1 2 ];
  Store.crash store;
  let _ = Store.recover store in
  check_bool "k1 there" true (Store.read store ("k1", "c") <> None);
  check_bool "k2 skipped" true (Store.read store ("k2", "c") = None);
  check_bool "k3 there" true (Store.read store ("k3", "c") <> None)

let test_store_catchup_from_log_and_sstables () =
  let engine, wal, store = make_store () in
  for i = 1 to 10 do
    Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 i) (Printf.sprintf "k%d" i))
  done;
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  for i = 1 to 10 do
    apply_put store ~l:(lsn 1 i) (Printf.sprintf "k%d" i) "v"
  done;
  let from_log = Store.committed_cells_in store ~above:(lsn 1 4) ~upto:(lsn 1 8) in
  check_int "log-served range (4,8]" 4 (List.length from_log);
  check_int "no sstable fallback yet" 0 (Store.served_from_sstables store);
  (* Roll the log over; the GC waits for the checkpoint force, so run the
     engine. The same range must then come from SSTables. *)
  Store.flush store;
  Sim.Engine.run engine;
  let after_gc = Store.committed_cells_in store ~above:(lsn 1 4) ~upto:(lsn 1 8) in
  check_int "sstable-served range (4,8]" 4 (List.length after_gc);
  check_int "fallback counted" 1 (Store.served_from_sstables store)

let test_store_recover_all () =
  let engine, wal, store = make_store () in
  for i = 1 to 4 do
    Wal.append wal (put_record ~cohort:0 ~l:(lsn 0 i) (Printf.sprintf "k%d" i))
  done;
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  Store.crash store;
  let lst = Store.recover_all store in
  check_bool "lst" true (Lsn.equal lst (lsn 0 4));
  check_bool "everything applied" true (Store.read store ("k4", "c") <> None)

let test_store_all_cells_sorted () =
  let _, _, store = make_store () in
  apply_put store ~l:(lsn 1 1) "b" "1";
  apply_put store ~l:(lsn 1 2) "a" "2";
  Store.flush store;
  apply_put store ~l:(lsn 1 3) "c" "3";
  let keys = List.map (fun ((k, _), _) -> k) (Store.all_cells store) in
  Alcotest.(check (list string)) "sorted across tables" [ "a"; "b"; "c" ] keys

let test_memtable_range () =
  let m = Memtable.create () in
  List.iter (fun k -> Memtable.put m (k, "c") (cell (lsn 1 1))) [ "a"; "b"; "c"; "d" ];
  let keys lo hi = List.map (fun ((k, _), _) -> k) (Memtable.range m ~low:lo ~high:hi) in
  Alcotest.(check (list string)) "window" [ "b"; "c" ] (keys "b" "d");
  Alcotest.(check (list string)) "empty window" [] (keys "x" "z");
  Alcotest.(check (list string)) "all" [ "a"; "b"; "c"; "d" ] (keys "" "zz")

let test_sstable_range () =
  let t = Sstable.build (sorted_entries 100) in
  let window = Sstable.range t ~low:"k0010" ~high:"k0013" in
  Alcotest.(check (list string))
    "window keys" [ "k0010"; "k0011"; "k0012" ]
    (List.map (fun ((k, _), _) -> k) window);
  check_int "empty before" 0 (List.length (Sstable.range t ~low:"a" ~high:"k0000"));
  check_int "tail" 1 (List.length (Sstable.range t ~low:"k0099" ~high:"zzz"))

let test_store_scan_merges_and_hides_tombstones () =
  let _, _, store = make_store () in
  (* Older values land in an SSTable... *)
  apply_put store ~l:(lsn 1 1) "k01" "old1";
  apply_put store ~l:(lsn 1 2) "k02" "old2";
  apply_put store ~l:(lsn 1 3) "k03" "old3";
  Store.flush store;
  (* ...then the memtable overwrites one and deletes another. *)
  apply_put store ~l:(lsn 1 4) "k02" "new2";
  Store.apply store ~lsn:(lsn 1 5) ~timestamp:0
    (Log_record.Delete { key = "k03"; col = "c"; version = 4 });
  let rows = Store.scan store ~low:"k00" ~high:"k99" ~limit:10 in
  Alcotest.(check (list string)) "row keys" [ "k01"; "k02" ] (List.map fst rows);
  let value_of key =
    List.assoc key rows |> List.assoc "c" |> fun (c : Row.cell) -> c.value
  in
  check_str_opt "sstable value survives" (Some "old1") (value_of "k01");
  check_str_opt "memtable overwrite wins" (Some "new2") (value_of "k02")

let test_store_scan_limit_and_bounds () =
  let _, _, store = make_store () in
  for i = 1 to 20 do
    apply_put store ~l:(lsn 1 i) (Printf.sprintf "k%02d" i) "v"
  done;
  check_int "limit" 5 (List.length (Store.scan store ~low:"k00" ~high:"k99" ~limit:5));
  let bounded = Store.scan store ~low:"k05" ~high:"k08" ~limit:100 in
  Alcotest.(check (list string)) "bounds" [ "k05"; "k06"; "k07" ] (List.map fst bounded)

let test_store_scan_multi_column_rows () =
  let _, _, store = make_store () in
  Store.apply store ~lsn:(lsn 1 1) ~timestamp:0
    (Log_record.Put { key = "k"; col = "a"; value = "1"; version = 1 });
  Store.apply store ~lsn:(lsn 1 2) ~timestamp:0
    (Log_record.Put { key = "k"; col = "b"; value = "2"; version = 1 });
  match Store.scan store ~low:"" ~high:"zz" ~limit:10 with
  | [ (key, cols) ] ->
    Alcotest.(check string) "one row" "k" key;
    Alcotest.(check (list string)) "both columns" [ "a"; "b" ] (List.map fst cols)
  | rows -> Alcotest.failf "expected one row, got %d" (List.length rows)

let prop_store_scan_matches_model =
  QCheck.Test.make ~name:"store: scan = sorted live keys of a model map" ~count:60
    QCheck.(list (pair (int_bound 30) bool))
    (fun writes ->
      let _, _, store = make_store () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (k, deleted) ->
          let key = Printf.sprintf "k%02d" k in
          if deleted then begin
            Store.apply store ~lsn:(lsn 1 (i + 1)) ~timestamp:0
              (Log_record.Delete { key; col = "c"; version = i });
            Hashtbl.remove model key
          end
          else begin
            apply_put store ~l:(lsn 1 (i + 1)) key "v";
            Hashtbl.replace model key ()
          end;
          (* Occasionally flush so the scan has to merge tables. *)
          if i mod 7 = 6 then Store.flush store)
        writes;
      let scanned = List.map fst (Store.scan store ~low:"" ~high:"zzz" ~limit:1000) in
      let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model []) in
      scanned = expected)

let test_store_crash_between_flush_and_checkpoint_force () =
  let engine, wal, store = make_store () in
  for i = 1 to 6 do
    Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 i) (Printf.sprintf "k%d" i))
  done;
  (* The cohort committed everything: durable writes + commit marker. *)
  Wal.append wal (Log_record.commit_upto ~cohort:0 (lsn 1 6));
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  for i = 1 to 6 do
    apply_put store ~l:(lsn 1 i) (Printf.sprintf "k%d" i) "v"
  done;
  (* Flush appends a checkpoint, but the node crashes before the checkpoint
     record is forced. The log must NOT have been rolled over in between:
     that would leave stable storage with neither the writes nor the
     checkpoint that replaced them. *)
  Store.flush store;
  Wal.crash wal;
  Store.crash store;
  let ckpt = Wal.last_checkpoint wal ~cohort:0 in
  let cmt = Wal.last_commit_marker wal ~cohort:0 in
  check_bool "checkpoint was lost with the crash" true (Lsn.equal ckpt Lsn.zero);
  check_int "every committed write survives in the log" 6
    (List.length (Wal.durable_writes_in wal ~cohort:0 ~above:ckpt ~upto:cmt));
  (* End to end: recovery rebuilds complete committed state. *)
  let cmt', _ = Store.recover store in
  check_bool "f.cmt recovered" true (Lsn.equal cmt' (lsn 1 6));
  for i = 1 to 6 do
    check_bool (Printf.sprintf "k%d readable after recovery" i) true
      (Store.read store (Printf.sprintf "k%d" i, "c") <> None)
  done

let test_wal_byte_accounting_and_forces () =
  let engine, wal = make_wal ~max_batch:2 () in
  let records =
    List.init 5 (fun i -> put_record ~cohort:0 ~l:(lsn 1 (i + 1)) (Printf.sprintf "k%d" i))
  in
  let bytes rs = List.fold_left (fun a r -> a + Log_record.approx_bytes r) 0 rs in
  List.iter (Wal.append wal) records;
  check_int "volatile bytes = sum of appended records" (bytes records) (Wal.volatile_bytes wal);
  Wal.force wal (fun () -> ());
  (* The first batch (max_batch = 2 records) left the tail when the device
     force was issued, before it completed. *)
  check_int "in-flight batch is out of the volatile tail"
    (bytes (List.filteri (fun i _ -> i >= 2) records))
    (Wal.volatile_bytes wal);
  Sim.Engine.run engine;
  check_int "tail drained" 0 (Wal.volatile_bytes wal);
  check_int "ceil(5/2) device forces" 3 (Wal.forces_issued wal);
  check_int "all durable" 5 (Wal.durable_count wal)

let test_store_get_prunes_stale_sstables () =
  let _, _, store = make_store () in
  apply_put store ~l:(lsn 1 1) "k" "old";
  Store.flush store;
  apply_put store ~l:(lsn 1 2) "k" "new";
  Store.flush store;
  check_int "two tables" 2 (Store.sstable_count store);
  let skipped0 = Store.sstables_skipped store in
  check_str_opt "newest wins" (Some "new")
    (Option.bind (Store.read store ("k", "c")) (fun c -> c.Row.value));
  check_bool "older table pruned via max_lsn" true (Store.sstables_skipped store > skipped0)

let test_store_scan_prunes_disjoint_sstables () =
  let _, _, store = make_store () in
  apply_put store ~l:(lsn 1 1) "a" "1";
  apply_put store ~l:(lsn 1 2) "b" "2";
  Store.flush store;
  apply_put store ~l:(lsn 1 3) "x" "3";
  Store.flush store;
  let skipped0 = Store.sstables_skipped store in
  let rows = Store.scan store ~low:"x" ~high:"zz" ~limit:10 in
  Alcotest.(check (list string)) "only x" [ "x" ] (List.map fst rows);
  check_int "disjoint table skipped" (skipped0 + 1) (Store.sstables_skipped store)

(* Shared bound semantics: low inclusive, high exclusive, byte-wise compare. *)
let prop_memtable_sstable_range_agree =
  QCheck.Test.make ~name:"memtable and sstable agree on [low, high) windows" ~count:150
    QCheck.(pair (list (int_bound 20)) (pair (int_bound 21) (int_bound 21)))
    (fun (ks, (b1, b2)) ->
      let m = Memtable.create () in
      List.iteri
        (fun i k -> Memtable.put m (Printf.sprintf "k%02d" k, "c") (cell (lsn 1 (i + 1))))
        ks;
      let table = Sstable.build (Memtable.to_sorted_list m) in
      let low = Printf.sprintf "k%02d" (Stdlib.min b1 b2)
      and high = Printf.sprintf "k%02d" (Stdlib.max b1 b2) in
      let naive =
        List.filter
          (fun ((k, _), _) -> String.compare low k <= 0 && String.compare k high < 0)
          (Memtable.to_sorted_list m)
      in
      Memtable.range m ~low ~high = naive && Sstable.range table ~low ~high = naive)

let prop_store_scan_window_matches_model =
  QCheck.Test.make ~name:"store: scan window/limit = model slice (random bounds)" ~count:80
    QCheck.(
      triple
        (list (pair (int_bound 30) bool))
        (pair (int_bound 31) (int_bound 31))
        (int_bound 8))
    (fun (writes, (b1, b2), limit_raw) ->
      let _, _, store = make_store () in
      let model = Hashtbl.create 16 in
      List.iteri
        (fun i (k, deleted) ->
          let key = Printf.sprintf "k%02d" k in
          if deleted then begin
            Store.apply store ~lsn:(lsn 1 (i + 1)) ~timestamp:0
              (Log_record.Delete { key; col = "c"; version = i });
            Hashtbl.remove model key
          end
          else begin
            apply_put store ~l:(lsn 1 (i + 1)) key "v";
            Hashtbl.replace model key ()
          end;
          (* Flush often enough that compaction (fanin 4) also happens. *)
          if i mod 5 = 4 then Store.flush store)
        writes;
      let low = Printf.sprintf "k%02d" (Stdlib.min b1 b2)
      and high = Printf.sprintf "k%02d" (Stdlib.max b1 b2) in
      let limit = limit_raw + 1 in
      let scanned = List.map fst (Store.scan store ~low ~high ~limit) in
      let expected =
        Hashtbl.fold (fun k () acc -> k :: acc) model []
        |> List.filter (fun k -> String.compare low k <= 0 && String.compare k high < 0)
        |> List.sort compare
        |> List.filteri (fun i _ -> i < limit)
      in
      scanned = expected)

let prop_store_apply_idempotent =
  QCheck.Test.make ~name:"store: re-applying a record is idempotent" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_bound 5) small_nat))
    (fun writes ->
      let _, _, store = make_store () in
      List.iteri
        (fun i (k, v) ->
          apply_put store ~l:(lsn 1 (i + 1)) (Printf.sprintf "k%d" k) (string_of_int v))
        writes;
      let before =
        List.map (fun (k, _) -> Store.read store (Printf.sprintf "k%d" k, "c")) writes
      in
      (* Re-apply everything (recovery replay). *)
      List.iteri
        (fun i (k, v) ->
          apply_put store ~l:(lsn 1 (i + 1)) (Printf.sprintf "k%d" k) (string_of_int v))
        writes;
      let after =
        List.map (fun (k, _) -> Store.read store (Printf.sprintf "k%d" k, "c")) writes
      in
      List.for_all2
        (fun a b ->
          Option.map (fun (c : Row.cell) -> c.value) a
          = Option.map (fun (c : Row.cell) -> c.value) b)
        before after)

(* --- merge iterator ---------------------------------------------------------- *)

module Iterator = Storage.Iterator

let entries_of_ints ks =
  List.map (fun (k, s) -> ((Printf.sprintf "k%02d" k, "c"), cell (lsn 1 s))) ks

let test_iterator_merges_sorted_sources () =
  let a = Iterator.of_sorted_list (entries_of_ints [ (1, 1); (3, 2); (5, 3) ]) in
  let b = Iterator.of_sorted_list (entries_of_ints [ (2, 4); (3, 5); (6, 6) ]) in
  let merged = Iterator.merge ~newer:Row.newer_by_lsn [ a; b ] in
  let keys = List.map (fun ((k, _), _) -> k) (Iterator.to_list merged) in
  Alcotest.(check (list string))
    "ascending, one entry per coordinate"
    [ "k01"; "k02"; "k03"; "k05"; "k06" ]
    keys

let test_iterator_duplicate_resolution_matches_rank () =
  (* Source order = consultation order: the first source's cell survives a
     duplicate unless the later one is strictly newer. *)
  let newest_first =
    Iterator.merge ~newer:Row.newer_by_lsn
      [
        Iterator.of_sorted_list [ (("k", "c"), cell ~value:(Some "new") (lsn 1 9)) ];
        Iterator.of_sorted_list [ (("k", "c"), cell ~value:(Some "old") (lsn 1 1)) ];
      ]
  in
  (match Iterator.next newest_first with
  | Some (_, c) -> check_str_opt "first-source newer wins" (Some "new") c.Row.value
  | None -> Alcotest.fail "empty merge");
  let oldest_first =
    Iterator.merge ~newer:Row.newer_by_lsn
      [
        Iterator.of_sorted_list [ (("k", "c"), cell ~value:(Some "old") (lsn 1 1)) ];
        Iterator.of_sorted_list [ (("k", "c"), cell ~value:(Some "new") (lsn 1 9)) ];
      ]
  in
  match Iterator.next oldest_first with
  | Some (_, c) -> check_str_opt "later-source newer still wins" (Some "new") c.Row.value
  | None -> Alcotest.fail "empty merge"

let test_iterator_sstable_window_and_laziness () =
  let table = Sstable.build (sorted_entries 100) in
  let src = Iterator.of_sstable ~low:"k0010" ~high:"k0013" table in
  let merged = Iterator.merge ~newer:Row.newer_by_lsn [ src ] in
  Alcotest.(check (list string))
    "window [low, high)" [ "k0010"; "k0011"; "k0012" ]
    (List.map (fun ((k, _), _) -> k) (Iterator.to_list merged));
  (* Laziness: a consumer that stops early never drains the sequence. *)
  let pulled = ref 0 in
  let seq = Seq.map (fun e -> incr pulled; e) (List.to_seq (sorted_entries 100)) in
  let m = Iterator.merge ~newer:Row.newer_by_lsn [ Iterator.of_seq seq ] in
  ignore (Iterator.next m);
  ignore (Iterator.next m);
  check_bool (Printf.sprintf "pulled %d of 100" !pulled) true (!pulled <= 3)

let prop_iterator_merge_equals_map_merge =
  QCheck.Test.make ~name:"iterator merge = coordinate-map merge (3 sources)" ~count:100
    QCheck.(triple (list (int_bound 15)) (list (int_bound 15)) (list (int_bound 15)))
    (fun (xs, ys, zs) ->
      let mk base ks =
        List.sort_uniq (fun (a, _) (b, _) -> Row.compare_coord a b)
          (List.mapi
             (fun i k ->
               ((Printf.sprintf "k%02d" k, "c"), cell ~value:(Some (string_of_int (base + i))) (lsn 1 (base + i))))
             ks)
      in
      let lists = [ mk 1000 xs; mk 2000 ys; mk 100 zs ] in
      let merged =
        Iterator.merge ~newer:Row.newer_by_lsn (List.map Iterator.of_sorted_list lists)
        |> Iterator.to_list
      in
      (* Model: fold sources in order, keep the incumbent unless strictly newer. *)
      let model = Hashtbl.create 16 in
      List.iter
        (List.iter (fun (coord, c) ->
             match Hashtbl.find_opt model coord with
             | Some (e : Row.cell) when Row.newer_by_lsn e c -> ()
             | _ -> Hashtbl.replace model coord c))
        lists;
      List.length merged = Hashtbl.length model
      && List.for_all
           (fun (coord, (c : Row.cell)) ->
             match Hashtbl.find_opt model coord with
             | Some m -> Lsn.equal m.Row.lsn c.lsn
             | None -> false)
           merged
      && merged = List.sort (fun (a, _) (b, _) -> Row.compare_coord a b) merged)

(* --- LRU cache ---------------------------------------------------------------- *)

module Cache = Storage.Cache

let test_cache_lru_eviction_order () =
  let c = Cache.create ~capacity:2 () in
  Cache.put c ("a", "c") 1;
  Cache.put c ("b", "c") 2;
  (* Touch "a" so "b" is the LRU entry when "x" forces an eviction. *)
  check_bool "a hit" true (Cache.find c ("a", "c") = Some 1);
  Cache.put c ("x", "c") 3;
  check_bool "b evicted" true (Cache.find c ("b", "c") = None);
  check_bool "a kept" true (Cache.find c ("a", "c") = Some 1);
  check_bool "x kept" true (Cache.find c ("x", "c") = Some 3);
  check_int "one eviction" 1 (Cache.evictions c);
  check_int "size bounded" 2 (Cache.size c)

let test_cache_invalidate_and_clear () =
  let c = Cache.create ~capacity:4 () in
  Cache.put c ("a", "c") 1;
  Cache.invalidate c ("a", "c");
  check_bool "invalidated" true (Cache.find c ("a", "c") = None);
  check_int "invalidation counted" 1 (Cache.invalidations c);
  Cache.invalidate c ("ghost", "c");
  check_int "absent coord is a no-op" 1 (Cache.invalidations c);
  Cache.put c ("b", "c") 2;
  ignore (Cache.find c ("b", "c"));
  Cache.clear c;
  check_int "empty after clear" 0 (Cache.size c);
  check_int "counters survive clear" 1 (Cache.hits c);
  (* One miss (the invalidated "a") and one hit ("b") were counted. *)
  check_bool "hit rate" true (abs_float (Cache.hit_rate c -. 0.5) < 1e-9)

let prop_cache_size_never_exceeds_capacity =
  QCheck.Test.make ~name:"cache: size <= capacity under random ops" ~count:100
    QCheck.(pair (int_range 1 8) (list (pair (int_bound 20) (int_bound 2))))
    (fun (cap, ops) ->
      let c = Cache.create ~capacity:cap () in
      List.iter
        (fun (k, op) ->
          let coord = (Printf.sprintf "k%02d" k, "c") in
          match op with
          | 0 -> Cache.put c coord k
          | 1 -> ignore (Cache.find c coord)
          | _ -> Cache.invalidate c coord)
        ops;
      Cache.size c <= cap)

(* --- tiered compaction planning ------------------------------------------------ *)

let table_of_bytes ~seq bytes =
  (* One table holding [bytes] of payload in a single cell. *)
  Sstable.build [ ((Printf.sprintf "k%04d" seq, "c"), cell ~value:(Some (String.make bytes 'x')) (lsn 1 seq)) ]

let test_compaction_plan_picks_similar_sized_run () =
  let tables = List.mapi (fun i b -> table_of_bytes ~seq:(i + 1) b) [ 100; 110; 100; 105; 4000 ] in
  (match Storage.Compaction.plan ~fanin:4 ~max_tables:16 tables with
  | Some (Storage.Compaction.Run { start; length }) ->
    check_int "run starts at the small tier" 0 start;
    check_int "covers the four similar tables" 4 length
  | other ->
    Alcotest.failf "expected Run, got %s"
      (match other with Some Storage.Compaction.All -> "All" | None -> "None" | _ -> "?"));
  (* Below fanin similar tables: nothing to do. *)
  let sparse = List.mapi (fun i b -> table_of_bytes ~seq:(i + 1) b) [ 100; 1000; 10_000 ] in
  check_bool "no full tier -> None" true
    (Storage.Compaction.plan ~fanin:4 ~max_tables:16 sparse = None)

let test_compaction_plan_full_at_max_tables () =
  let tables = List.init 6 (fun i -> table_of_bytes ~seq:(i + 1) (100 * (i + 1))) in
  check_bool "safety valve" true
    (Storage.Compaction.plan ~fanin:4 ~max_tables:6 tables = Some Storage.Compaction.All)

let test_store_tiered_compaction_bounds_work () =
  (* Distinct keys per flush: the store grows linearly while each tier merge
     touches only its tier. The seed design (full merge every [fanin]
     flushes) would show max merge input ~= store bytes and every compaction
     full; tiering must keep single-merge input well under the store size
     with zero full merges, while still bounding the table count. *)
  let _, _, store = make_store ~flush_bytes:2_000 () in
  for i = 1 to 2_000 do
    apply_put store ~l:(lsn 1 i) (Printf.sprintf "k%05d" i) "valuevaluevalue"
  done;
  check_bool "compactions ran" true (Store.compactions store > 10);
  check_int "no full merge below the safety valve" 0 (Store.full_compactions store);
  check_bool "table count bounded" true (Store.sstable_count store < 16);
  let max_input = Store.max_compaction_input_bytes store in
  let store_peak = Store.max_store_bytes_at_compaction store in
  check_bool
    (Printf.sprintf "max merge input %dB well under peak store %dB" max_input store_peak)
    true
    (float_of_int max_input < 0.9 *. float_of_int store_peak);
  (* Reads still see everything across the tiers. *)
  check_str_opt "oldest key survives" (Some "valuevaluevalue")
    (Option.bind (Store.read store ("k00001", "c")) (fun c -> c.Row.value))

let test_store_major_compact_gcs_tombstones () =
  let _, _, store = make_store () in
  apply_put store ~l:(lsn 1 1) "a" "1";
  apply_put store ~l:(lsn 1 2) "b" "2";
  Store.apply store ~lsn:(lsn 1 3) ~timestamp:0
    (Log_record.Delete { key = "a"; col = "c"; version = 2 });
  Store.flush store;
  check_int "tombstone still versioned" 2 (Store.current_version store ("a", "c"));
  Store.major_compact store;
  check_int "one table" 1 (Store.sstable_count store);
  check_int "tombstone GCed" 0 (Store.current_version store ("a", "c"));
  check_int "full merge counted" 1 (Store.full_compactions store);
  check_str_opt "live key survives" (Some "2")
    (Option.bind (Store.read store ("b", "c")) (fun c -> c.Row.value))

(* --- store row cache ------------------------------------------------------------ *)

let make_cached_store ?(cache_capacity = 8) () =
  let engine, wal = make_wal () in
  let store = Store.create ~cohort:0 ~wal ~cache_capacity () in
  (engine, wal, store)

let test_store_cache_hits_and_invalidation () =
  let _, _, store = make_cached_store () in
  apply_put store ~l:(lsn 1 1) "k" "v1";
  Store.flush store;
  (* First get fills the cache, the second is served from it. *)
  ignore (Store.get store ("k", "c"));
  check_int "first lookup misses" 1 (Store.cache_misses store);
  let probed0 = Store.sstables_probed store in
  (match Store.get_profiled store ("k", "c") with
  | Some c, Store.Cache_hit -> check_str_opt "cached value" (Some "v1") c.Row.value
  | _, Store.Probed _ -> Alcotest.fail "expected a cache hit"
  | None, _ -> Alcotest.fail "value lost");
  check_int "hit did not touch sstables" probed0 (Store.sstables_probed store);
  (* A write to the coordinate invalidates it. *)
  apply_put store ~l:(lsn 1 2) "k" "v2";
  (match Store.get_profiled store ("k", "c") with
  | Some c, Store.Probed _ -> check_str_opt "fresh value" (Some "v2") c.Row.value
  | _, Store.Cache_hit -> Alcotest.fail "stale cache survived a write"
  | None, _ -> Alcotest.fail "value lost");
  check_bool "invalidations counted" true (Store.cache_invalidations store >= 1)

let test_store_cache_negative_lookups () =
  let _, _, store = make_cached_store () in
  apply_put store ~l:(lsn 1 1) "other" "v";
  Store.flush store;
  ignore (Store.get store ("ghost", "c"));
  (match Store.get_profiled store ("ghost", "c") with
  | None, Store.Cache_hit -> ()
  | None, Store.Probed _ -> Alcotest.fail "absence not cached"
  | Some _, _ -> Alcotest.fail "phantom value");
  (* The absent coordinate becoming live must invalidate the negative entry. *)
  apply_put store ~l:(lsn 1 2) "ghost" "now-live";
  check_str_opt "new value visible" (Some "now-live")
    (Option.bind (Store.read store ("ghost", "c")) (fun c -> c.Row.value))

let test_store_cache_cleared_on_crash () =
  let engine, wal, store = make_cached_store () in
  for i = 1 to 4 do
    Wal.append wal (put_record ~cohort:0 ~l:(lsn 1 i) (Printf.sprintf "k%d" i))
  done;
  Wal.append wal (Log_record.commit_upto ~cohort:0 (lsn 1 4));
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine;
  for i = 1 to 4 do
    apply_put store ~l:(lsn 1 i) (Printf.sprintf "k%d" i) "v"
  done;
  ignore (Store.get store ("k1", "c"));
  check_bool "cache populated" true (Store.cache_size store > 0);
  Store.crash store;
  check_int "cache gone with the crash" 0 (Store.cache_size store);
  let _ = Store.recover store in
  check_str_opt "recovery unaffected" (Some "v")
    (Option.bind (Store.read store ("k1", "c")) (fun c -> c.Row.value))

let suite =
  [
    Alcotest.test_case "lsn: ordering" `Quick test_lsn_ordering;
    Alcotest.test_case "lsn: next/epoch/pp" `Quick test_lsn_next_and_epoch;
    QCheck_alcotest.to_alcotest prop_lsn_compare_total_order;
    Alcotest.test_case "memtable: put/get" `Quick test_memtable_put_get;
    Alcotest.test_case "memtable: default overwrite" `Quick test_memtable_overwrite_default;
    Alcotest.test_case "memtable: newer guard" `Quick test_memtable_newer_guard;
    Alcotest.test_case "memtable: sorted iteration" `Quick test_memtable_sorted_iteration;
    Alcotest.test_case "memtable: max lsn & clear" `Quick test_memtable_max_lsn_and_clear;
    QCheck_alcotest.to_alcotest prop_memtable_matches_model;
    Alcotest.test_case "bloom: no false negatives" `Quick test_bloom_no_false_negatives;
    Alcotest.test_case "bloom: filters absent keys" `Quick test_bloom_filters_most_absent;
    QCheck_alcotest.to_alcotest prop_bloom_never_false_negative;
    Alcotest.test_case "sstable: build & get" `Quick test_sstable_build_get;
    Alcotest.test_case "sstable: lsn/key tags" `Quick test_sstable_lsn_tags;
    Alcotest.test_case "sstable: rejects unsorted" `Quick test_sstable_rejects_unsorted;
    Alcotest.test_case "sstable: lsn-range extraction" `Quick test_sstable_lsn_range_extraction;
    QCheck_alcotest.to_alcotest prop_sstable_lookup_matches_input;
    Alcotest.test_case "compaction: newest wins" `Quick test_compaction_newest_wins;
    Alcotest.test_case "compaction: tombstone GC" `Quick test_compaction_drops_tombstones;
    QCheck_alcotest.to_alcotest prop_compaction_equals_map_merge;
    Alcotest.test_case "wal: force makes durable" `Quick test_wal_force_makes_durable;
    Alcotest.test_case "wal: crash loses tail" `Quick test_wal_crash_loses_tail;
    Alcotest.test_case "wal: group commit batches" `Quick test_wal_group_commit_batches;
    Alcotest.test_case "wal: max_batch=1 disables batching" `Quick test_wal_max_batch_bounds_forces;
    Alcotest.test_case "wal: crash drops waiters" `Quick test_wal_crash_drops_waiters;
    Alcotest.test_case "wal: per-cohort accounting" `Quick test_wal_per_cohort_accounting;
    Alcotest.test_case "wal: gc rolls over" `Quick test_wal_gc_rolls_over;
    Alcotest.test_case "wal: range queries sorted+dedup" `Quick test_wal_writes_in_range_sorted_dedup;
    Alcotest.test_case "wal: wipe" `Quick test_wal_wipe_loses_everything;
    Alcotest.test_case "wal: batch service scales with bytes" `Quick
      test_wal_batch_service_scales_with_bytes;
    Alcotest.test_case "skipped-lsns: add/mem/gc" `Quick test_skipped_lsns;
    Alcotest.test_case "store: apply & read" `Quick test_store_apply_read;
    Alcotest.test_case "store: delete tombstones" `Quick test_store_delete_hides_but_versions;
    Alcotest.test_case "store: flush to sstable" `Quick test_store_flush_and_read_from_sstable;
    Alcotest.test_case "store: auto flush & compaction" `Quick test_store_auto_flush_and_compaction;
    Alcotest.test_case "store: recovery to cmt" `Quick test_store_recovery_replays_to_cmt;
    Alcotest.test_case "store: recovery honours skipped LSNs" `Quick test_store_recovery_skips_truncated;
    Alcotest.test_case "store: catch-up log vs sstable" `Quick test_store_catchup_from_log_and_sstables;
    Alcotest.test_case "store: recover_all" `Quick test_store_recover_all;
    Alcotest.test_case "store: all_cells sorted" `Quick test_store_all_cells_sorted;
    Alcotest.test_case "memtable: range window" `Quick test_memtable_range;
    Alcotest.test_case "sstable: range window" `Quick test_sstable_range;
    Alcotest.test_case "store: scan merges, hides tombstones" `Quick
      test_store_scan_merges_and_hides_tombstones;
    Alcotest.test_case "store: scan limit & bounds" `Quick test_store_scan_limit_and_bounds;
    Alcotest.test_case "store: scan multi-column rows" `Quick test_store_scan_multi_column_rows;
    QCheck_alcotest.to_alcotest prop_store_scan_matches_model;
    QCheck_alcotest.to_alcotest prop_store_apply_idempotent;
    Alcotest.test_case "store: crash between flush and checkpoint force" `Quick
      test_store_crash_between_flush_and_checkpoint_force;
    Alcotest.test_case "wal: incremental byte accounting" `Quick
      test_wal_byte_accounting_and_forces;
    Alcotest.test_case "store: get prunes stale sstables" `Quick
      test_store_get_prunes_stale_sstables;
    Alcotest.test_case "store: scan prunes disjoint sstables" `Quick
      test_store_scan_prunes_disjoint_sstables;
    QCheck_alcotest.to_alcotest prop_memtable_sstable_range_agree;
    QCheck_alcotest.to_alcotest prop_store_scan_window_matches_model;
    Alcotest.test_case "iterator: merges sorted sources" `Quick test_iterator_merges_sorted_sources;
    Alcotest.test_case "iterator: duplicate resolution by rank" `Quick
      test_iterator_duplicate_resolution_matches_rank;
    Alcotest.test_case "iterator: sstable window & laziness" `Quick
      test_iterator_sstable_window_and_laziness;
    QCheck_alcotest.to_alcotest prop_iterator_merge_equals_map_merge;
    Alcotest.test_case "cache: LRU eviction order" `Quick test_cache_lru_eviction_order;
    Alcotest.test_case "cache: invalidate & clear" `Quick test_cache_invalidate_and_clear;
    QCheck_alcotest.to_alcotest prop_cache_size_never_exceeds_capacity;
    Alcotest.test_case "compaction: plan picks similar-sized run" `Quick
      test_compaction_plan_picks_similar_sized_run;
    Alcotest.test_case "compaction: full merge at max_tables" `Quick
      test_compaction_plan_full_at_max_tables;
    Alcotest.test_case "store: tiered compaction bounds merge work" `Quick
      test_store_tiered_compaction_bounds_work;
    Alcotest.test_case "store: major compact GCs tombstones" `Quick
      test_store_major_compact_gcs_tombstones;
    Alcotest.test_case "store: cache hits & write invalidation" `Quick
      test_store_cache_hits_and_invalidation;
    Alcotest.test_case "store: cache covers negative lookups" `Quick
      test_store_cache_negative_lookups;
    Alcotest.test_case "store: cache cleared on crash" `Quick test_store_cache_cleared_on_crash;
  ]
