(* Property tests driving the WAL through random append / force / crash /
   GC schedules, checking the durability contract:

   - the durable log is always a prefix of what was appended (no holes, no
     reordering, no resurrection after a crash);
   - force callbacks fire iff the records appended before the force survive;
   - gc never removes records above its horizon and never touches other
     cohorts. *)

module Wal = Storage.Wal
module Lsn = Storage.Lsn
module Log_record = Storage.Log_record

type op = Append of int (* cohort *) | Force | Crash | Run_ms of int | Gc of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun c -> Append (c mod 3)) (int_bound 2));
        (3, return Force);
        (1, return Crash);
        (3, map (fun ms -> Run_ms (1 + (ms mod 30))) (int_bound 29));
        (1, map (fun c -> Gc (c mod 3)) (int_bound 2));
      ])

let arb_ops = QCheck.make ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

let run_schedule ops =
  let engine = Sim.Engine.create ~seed:9 () in
  let disk = Sim.Resource.create engine ~name:"d" () in
  let model = Sim.Disk_model.create Sim.Disk_model.Ssd in
  let wal = Wal.create engine ~disk ~model ~rng:(Sim.Rng.create 3) ~max_batch:4 () in
  (* Model state *)
  let appended = Array.make 3 [] in  (* per cohort, newest first: seq list *)
  let seqs = Array.make 3 0 in
  let forced_watermark = Array.make 3 0 in  (* per cohort seq known durable *)
  let gc_floor = Array.make 3 0 in
  let ok = ref true in
  let check_prefix () =
    (* Durable records per cohort must be a contiguous ascending seq run
       within (gc_floor, watermark-or-beyond]. *)
    for c = 0 to 2 do
      let writes = Wal.durable_writes_in wal ~cohort:c ~above:Lsn.zero ~upto:(Lsn.make ~epoch:99 ~seq:0) in
      let seqs_durable = List.map (fun (l, _, _, _) -> l.Lsn.seq) writes in
      let rec contiguous = function
        | a :: (b :: _ as rest) -> b = a + 1 && contiguous rest
        | _ -> true
      in
      if not (contiguous seqs_durable) then ok := false;
      (* Everything known-forced below the GC floor is gone; above it, the
         forced prefix must be present. *)
      List.iter
        (fun s -> if s > gc_floor.(c) && s <= forced_watermark.(c) then
            if not (List.mem s seqs_durable) then ok := false)
        (List.init forced_watermark.(c) (fun i -> i + 1))
    done
  in
  List.iter
    (fun op ->
      match op with
      | Append c ->
        seqs.(c) <- seqs.(c) + 1;
        let seq = seqs.(c) in
        Wal.append wal
          (Log_record.write ~cohort:c ~lsn:(Lsn.make ~epoch:1 ~seq) ~timestamp:0
             (Log_record.Put { key = string_of_int seq; col = "c"; value = "v"; version = seq }));
        appended.(c) <- seq :: appended.(c)
      | Force ->
        (* Snapshot what this force covers; on completion that prefix must be
           durable. *)
        let snapshot = Array.copy seqs in
        Wal.force wal (fun () ->
            for c = 0 to 2 do
              forced_watermark.(c) <- Stdlib.max forced_watermark.(c) snapshot.(c)
            done)
      | Crash ->
        Wal.crash wal;
        (* Unforced tail is gone: roll the model back to the durable state. *)
        for c = 0 to 2 do
          let lst = (Wal.last_write_lsn wal ~cohort:c).Lsn.seq in
          seqs.(c) <- lst;
          appended.(c) <- List.filter (fun s -> s <= lst) appended.(c)
        done
      | Run_ms ms -> Sim.Engine.run_for engine (Sim.Sim_time.ms ms)
      | Gc c ->
        let upto = forced_watermark.(c) / 2 in
        if upto > 0 then begin
          Wal.gc_cohort wal ~cohort:c ~upto:(Lsn.make ~epoch:1 ~seq:upto);
          gc_floor.(c) <- Stdlib.max gc_floor.(c) upto
        end)
    ops;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  for c = 0 to 2 do
    forced_watermark.(c) <- forced_watermark.(c)  (* final forces completed above *)
  done;
  check_prefix ();
  !ok

let prop_durable_prefix =
  QCheck.Test.make ~name:"wal: durable log is a contiguous per-cohort prefix" ~count:120
    arb_ops run_schedule

let prop_force_callbacks_cover_their_records =
  QCheck.Test.make ~name:"wal: force callback implies records durable" ~count:80
    QCheck.(int_range 1 40)
    (fun n ->
      let engine = Sim.Engine.create ~seed:4 () in
      let disk = Sim.Resource.create engine ~name:"d" () in
      let model = Sim.Disk_model.create Sim.Disk_model.Ssd in
      let wal = Wal.create engine ~disk ~model ~rng:(Sim.Rng.create 3) ~max_batch:3 () in
      let ok = ref true in
      for seq = 1 to n do
        Wal.append_and_force wal
          (Log_record.write ~cohort:0 ~lsn:(Lsn.make ~epoch:1 ~seq) ~timestamp:0
             (Log_record.Put { key = "k"; col = "c"; value = "v"; version = seq }))
          (fun () ->
            (* At callback time this record (and its predecessors) are durable. *)
            if (Wal.last_write_lsn wal ~cohort:0).Lsn.seq < seq then ok := false)
      done;
      Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
      !ok && (Wal.last_write_lsn wal ~cohort:0).Lsn.seq = n)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_durable_prefix;
    QCheck_alcotest.to_alcotest prop_force_callbacks_cover_their_records;
  ]
