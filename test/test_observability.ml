(* Observability layer: trace ring buffer, causal span coverage of the write
   path, metrics-registry gauge sampling, Perfetto export round-trip, and
   the failover-timeline analyzer. *)

open Spinnaker

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_config =
  {
    Config.default with
    Config.nodes = 5;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

let boot ?(config = test_config) ?(seed = 42) () =
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then Alcotest.fail "cluster not ready";
  (engine, cluster)

let await engine ?(timeout = Sim.Sim_time.sec 60) cell =
  let deadline = Sim.Sim_time.add (Sim.Engine.now engine) timeout in
  let rec loop () =
    match !cell with
    | Some v -> v
    | None ->
      if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then Alcotest.fail "await timeout"
      else begin
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        loop ()
      end
  in
  loop ()

let put_sync engine client key col value =
  let r = ref None in
  Client.put client key col ~value (fun x -> r := Some x);
  await engine r

(* --- ring buffer ------------------------------------------------------------ *)

let test_ring_buffer_overwrite () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create ~capacity:8 engine in
  check_int "capacity" 8 (Sim.Trace.capacity trace);
  for i = 0 to 19 do
    Sim.Trace.emit trace ~tag:(Printf.sprintf "t%d" i) "x"
  done;
  check_int "length capped" 8 (Sim.Trace.length trace);
  check_int "dropped counts overwrites" 12 (Sim.Trace.dropped trace);
  let tags = List.map (fun e -> e.Sim.Trace.tag) (Sim.Trace.events trace) in
  Alcotest.(check (list string))
    "oldest-first, newest retained"
    [ "t12"; "t13"; "t14"; "t15"; "t16"; "t17"; "t18"; "t19" ]
    tags;
  Sim.Trace.clear trace;
  check_int "clear resets length" 0 (Sim.Trace.length trace);
  check_int "clear resets dropped" 0 (Sim.Trace.dropped trace)

let test_span_ids_unique () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create ~capacity:64 engine in
  let a = Sim.Trace.span_start trace ~tag:"s" "first" in
  let b = Sim.Trace.span_start trace ~tag:"s" "second" in
  check_bool "never zero" true (a <> 0 && b <> 0);
  check_bool "unique" true (a <> b);
  Sim.Trace.span_end trace ~span:a ~tag:"s" "done";
  let kinds = List.map (fun e -> e.Sim.Trace.kind) (Sim.Trace.events trace) in
  Alcotest.(check int) "three events" 3 (List.length kinds);
  let ends =
    List.filter
      (fun e -> e.Sim.Trace.kind = Sim.Trace.Span_end && e.Sim.Trace.span_id = a)
      (Sim.Trace.events trace)
  in
  check_int "end pairs with start id" 1 (List.length ends)

let test_disabled_trace_drops () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create ~capacity:8 engine in
  Sim.Trace.enable trace false;
  Sim.Trace.emit trace ~tag:"t" "x";
  check_int "nothing recorded" 0 (Sim.Trace.length trace);
  Sim.Trace.enable trace true;
  Sim.Trace.emit trace ~tag:"t" "x";
  check_int "recording again" 1 (Sim.Trace.length trace)

(* --- metrics registry ------------------------------------------------------- *)

let test_gauge_sampling () =
  let engine = Sim.Engine.create () in
  let registry = Sim.Metrics.Registry.create engine in
  let v = ref 0 in
  let g = Sim.Metrics.Registry.register_gauge registry ~node:3 ~name:"depth" (fun () -> !v) in
  Sim.Metrics.Registry.start_sampling registry ~period:(Sim.Sim_time.ms 10);
  Sim.Metrics.Registry.start_sampling registry ~period:(Sim.Sim_time.ms 10) (* idempotent *);
  v := 7;
  Sim.Engine.run_for engine (Sim.Sim_time.ms 35);
  v := 11;
  Sim.Engine.run_for engine (Sim.Sim_time.ms 30);
  check_bool "several samples" true (Sim.Metrics.Registry.samples_taken registry >= 5);
  check_int "gauge node" 3 (Sim.Metrics.Gauge.node g);
  let points = Sim.Metrics.Gauge.points g in
  check_int "one point per sample" (Sim.Metrics.Registry.samples_taken registry)
    (List.length points);
  let ts = List.map fst points in
  check_bool "timestamps strictly increasing" true
    (List.for_all2 (fun a b -> a < b) (List.filteri (fun i _ -> i < List.length ts - 1) ts)
       (List.tl ts));
  (match Sim.Metrics.Gauge.last g with
  | Some (_, value) -> check_int "last sample sees current value" 11 value
  | None -> Alcotest.fail "no samples");
  check_bool "early sample saw old value" true
    (List.exists (fun (_, value) -> value = 7) points)

let test_gauge_cap_drops_oldest () =
  let engine = Sim.Engine.create () in
  let registry = Sim.Metrics.Registry.create ~max_points_per_gauge:4 engine in
  let n = ref 0 in
  let g = Sim.Metrics.Registry.register_gauge registry ~node:0 ~name:"n" (fun () -> incr n; !n) in
  Sim.Metrics.Registry.start_sampling registry ~period:(Sim.Sim_time.ms 10);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 100);
  check_int "capped" 4 (List.length (Sim.Metrics.Gauge.points g));
  check_bool "dropped counted" true (Sim.Metrics.Gauge.dropped g > 0);
  let values = List.map snd (Sim.Metrics.Gauge.points g) in
  check_bool "newest retained" true (List.mem !n values)

let test_registry_create_or_get () =
  let engine = Sim.Engine.create () in
  let registry = Sim.Metrics.Registry.create engine in
  let c1 = Sim.Metrics.Registry.counter registry ~name:"ops" in
  let c2 = Sim.Metrics.Registry.counter registry ~name:"ops" in
  Sim.Metrics.Counter.incr c1;
  Sim.Metrics.Counter.incr c2;
  check_int "same counter by name" 2 (Sim.Metrics.Counter.value c1);
  let h1 = Sim.Metrics.Registry.histogram registry ~name:"lat" in
  let h2 = Sim.Metrics.Registry.histogram registry ~name:"lat" in
  Sim.Metrics.Histogram.record h1 1.0;
  Sim.Metrics.Histogram.record h2 2.0;
  check_int "same histogram by name" 2 (Sim.Metrics.Histogram.count h1)

let test_histogram_percentile_cache () =
  let h = Sim.Metrics.Histogram.create ~name:"h" () in
  List.iter (Sim.Metrics.Histogram.record h) [ 5.0; 1.0; 3.0 ];
  Alcotest.(check (float 0.001)) "p50 sorts" 3.0 (Sim.Metrics.Histogram.percentile h 0.5);
  Alcotest.(check (list (float 0.001)))
    "samples keep insertion order" [ 5.0; 1.0; 3.0 ]
    (Sim.Metrics.Histogram.samples h);
  (* A record after a percentile query must invalidate the cached sort. *)
  Sim.Metrics.Histogram.record h 0.5;
  Alcotest.(check (float 0.001)) "cache invalidated" 0.5 (Sim.Metrics.Histogram.percentile h 0.0);
  Alcotest.(check (float 0.001)) "max tracks new sample" 5.0 (Sim.Metrics.Histogram.percentile h 1.0)

(* --- Perfetto export round-trip --------------------------------------------- *)

let test_perfetto_roundtrip () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create ~capacity:64 engine in
  let registry = Sim.Metrics.Registry.create engine in
  let depth = ref 4 in
  ignore (Sim.Metrics.Registry.register_gauge registry ~node:1 ~name:"queue" (fun () -> !depth));
  Sim.Metrics.Registry.start_sampling registry ~period:(Sim.Sim_time.ms 10);
  let span = Sim.Trace.span_start trace ~trace_id:99 ~node:1 ~cohort:0 ~tag:"phase.force" "w" in
  Sim.Engine.run_for engine (Sim.Sim_time.ms 25);
  Sim.Trace.span_end trace ~span ~trace_id:99 ~node:1 ~cohort:0 ~lsn:"1.5" ~tag:"phase.force" "d";
  Sim.Trace.event trace ~node:2 ~cohort:0 ~tag:"zk.session_expired" "session=1";
  let doc = Sim.Trace_export.to_json ~registry trace in
  let text = Sim.Json.to_string doc in
  match Sim.Json.of_string text with
  | Error e -> Alcotest.failf "export did not parse back: %s" e
  | Ok parsed ->
    let events =
      match Sim.Json.member "traceEvents" parsed with
      | Some (Sim.Json.List l) -> l
      | _ -> Alcotest.fail "traceEvents missing"
    in
    let ph e = match Sim.Json.member "ph" e with Some (Sim.Json.String s) -> s | _ -> "?" in
    let count p = List.length (List.filter (fun e -> ph e = p) events) in
    check_int "one async begin" 1 (count "b");
    check_int "one async end" 1 (count "e");
    check_int "one instant" 1 (count "i");
    check_bool "gauge counter events present" true (count "C" >= 2);
    check_bool "process-name metadata present" true (count "M" >= 1);
    let begin_ev = List.find (fun e -> ph e = "b") events in
    (match Sim.Json.member "pid" begin_ev with
    | Some (Sim.Json.Int 1) -> ()
    | _ -> Alcotest.fail "span pid should be the emitting node");
    (match Sim.Json.member "id" begin_ev with
    | Some (Sim.Json.Int id) -> check_int "async id is the span id" span id
    | _ -> Alcotest.fail "span id missing");
    (match Sim.Json.member "otherData" parsed with
    | Some other -> (
      match Sim.Json.member "retained_events" other with
      | Some (Sim.Json.Int n) -> check_int "retained_events" (Sim.Trace.length trace) n
      | _ -> Alcotest.fail "retained_events missing")
    | None -> Alcotest.fail "otherData missing")

(* --- causal span coverage of the write path ---------------------------------- *)

(* Every committed client write must carry all four leader phases (Figure 4:
   queue -> force / replication -> apply) under its request-derived trace id,
   plus the client's own request span. *)
let test_write_path_span_coverage () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let writes = 5 in
  for i = 0 to writes - 1 do
    let key = Partition.key_of_int (Cluster.partition cluster) (100 + i) in
    match put_sync engine client key "c" (Printf.sprintf "v%d" i) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "put %d failed: %a" i Client.pp_error e
  done;
  let events = Sim.Trace.events (Cluster.trace cluster) in
  let has ~trace_id ~tag kind =
    List.exists
      (fun e ->
        e.Sim.Trace.trace_id = trace_id && String.equal e.Sim.Trace.tag tag
        && e.Sim.Trace.kind = kind)
      events
  in
  for request_id = 0 to writes - 1 do
    let trace_id = Sim.Trace.request_trace_id ~client:(Client.id client) ~request_id in
    List.iter
      (fun tag ->
        check_bool
          (Printf.sprintf "request %d has %s start" request_id tag)
          true
          (has ~trace_id ~tag Sim.Trace.Span_start);
        check_bool
          (Printf.sprintf "request %d has %s end" request_id tag)
          true
          (has ~trace_id ~tag Sim.Trace.Span_end))
      [ "client.request"; "phase.queue"; "phase.force"; "phase.replication"; "phase.apply" ]
  done;
  (* Leader-side spans carry the cohort and an LSN on the force phase. *)
  let forces =
    List.filter
      (fun e ->
        String.equal e.Sim.Trace.tag "phase.force" && e.Sim.Trace.kind = Sim.Trace.Span_start)
      events
  in
  check_bool "force spans recorded" true (List.length forces >= writes);
  List.iter
    (fun e ->
      check_bool "force span has cohort" true (e.Sim.Trace.cohort >= 0);
      check_bool "force span has lsn" true (String.length e.Sim.Trace.lsn > 0))
    forces

(* --- failover timeline -------------------------------------------------------- *)

let test_failover_timeline () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let width = test_config.Config.key_space / test_config.Config.nodes in
  let cursor = ref 0 in
  let rec writer () =
    let key = Partition.key_of_int (Cluster.partition cluster) (!cursor mod width) in
    incr cursor;
    Client.put client key "c" ~value:"v" (fun _ -> writer ())
  in
  for _ = 1 to 4 do
    writer ()
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  let leader = Option.get (Cluster.leader_of cluster ~range:0) in
  let t_crash = Sim.Engine.now engine in
  Cluster.crash_node cluster leader;
  let committed () =
    List.exists
      (fun e ->
        e.Sim.Trace.cohort = 0
        && e.Sim.Trace.kind = Sim.Trace.Span_end
        && Sim.Sim_time.(e.Sim.Trace.at > t_crash))
      (Sim.Trace.find (Cluster.trace cluster) ~tag:"phase.apply")
  in
  let deadline = Sim.Sim_time.add t_crash (Sim.Sim_time.sec 60) in
  let rec wait () =
    if committed () then ()
    else if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then
      Alcotest.fail "no committed write after crash"
    else begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 20);
      wait ()
    end
  in
  wait ();
  let tl =
    Sim.Timeline.analyze ~leader
      ~events:(Sim.Trace.events (Cluster.trace cluster))
      ~crash_at:t_crash ~cohort:0 ()
  in
  check_bool "origin is the injected crash instant" true (tl.Sim.Timeline.crash_at = t_crash);
  check_bool "session expiry observed" true (tl.Sim.Timeline.session_expired_at <> None);
  check_bool "election observed" true (tl.Sim.Timeline.election_started_at <> None);
  check_bool "new leader opened" true (tl.Sim.Timeline.cohort_open_at <> None);
  (match tl.Sim.Timeline.unavailability with
  | None -> Alcotest.fail "unavailability window not measured"
  | Some w ->
    let ms = Sim.Sim_time.to_ms_f w in
    check_bool "window is positive and finite" true (ms > 0.0 && ms < 60_000.0);
    (* The outage must at least cover failure detection (the ZK session
       timeout) under this config. *)
    check_bool "window covers failure detection" true
      (ms >= Sim.Sim_time.to_ms_f test_config.Config.session_timeout));
  (* The causal chain is ordered. *)
  let ordered a b =
    match (a, b) with
    | Some x, Some y -> Sim.Sim_time.(x <= y)
    | _ -> true
  in
  check_bool "expiry before election" true
    (ordered tl.Sim.Timeline.session_expired_at tl.Sim.Timeline.election_started_at);
  check_bool "election before open" true
    (ordered tl.Sim.Timeline.election_started_at tl.Sim.Timeline.cohort_open_at);
  check_bool "open before first commit" true
    (ordered tl.Sim.Timeline.cohort_open_at tl.Sim.Timeline.first_commit_at);
  (* Restart the crashed leader: catch-up duration becomes measurable. *)
  Cluster.restart_node cluster leader;
  let t_restart = Sim.Engine.now engine in
  let caught_up () =
    List.exists
      (fun e ->
        e.Sim.Trace.cohort = 0 && e.Sim.Trace.node = leader
        && Sim.Sim_time.(e.Sim.Trace.at > t_restart))
      (Sim.Trace.find (Cluster.trace cluster) ~tag:"follower_active")
  in
  let deadline = Sim.Sim_time.add t_restart (Sim.Sim_time.sec 60) in
  let rec wait_catchup () =
    if caught_up () then ()
    else if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then
      Alcotest.fail "restarted leader never caught up"
    else begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 20);
      wait_catchup ()
    end
  in
  wait_catchup ();
  let tl =
    Sim.Timeline.analyze ~leader
      ~events:(Sim.Trace.events (Cluster.trace cluster))
      ~crash_at:t_crash ~cohort:0 ()
  in
  check_bool "restart observed" true (tl.Sim.Timeline.restart_at <> None);
  (match tl.Sim.Timeline.catchup with
  | None -> Alcotest.fail "catch-up not measured"
  | Some c -> check_bool "catch-up positive" true (Sim.Sim_time.to_ms_f c > 0.0));
  (* JSON view matches the analysis. *)
  (match Sim.Json.member "unavailability_ms" (Sim.Timeline.to_json tl) with
  | Some (Sim.Json.Float _) -> ()
  | _ -> Alcotest.fail "unavailability_ms not numeric in JSON")

(* --- outlier flight recorder -------------------------------------------------- *)

(* Pins are copied out of the ring at completion time, so they must survive a
   full ring wraparound that evicts every one of the request's events. *)
let test_flight_pins_survive_eviction () =
  let engine = Sim.Engine.create () in
  let trace = Sim.Trace.create ~capacity:16 engine in
  let f = Sim.Trace.Flight.create ~top_k:2 ~window:(Sim.Sim_time.sec 100) trace in
  let note_request ~trace_id ~ms ~events =
    let started = Sim.Engine.now engine in
    for i = 0 to events - 1 do
      Sim.Trace.event trace ~trace_id ~tag:(Printf.sprintf "step%d" i) "x"
    done;
    Sim.Engine.run_for engine (Sim.Sim_time.ms ms);
    Sim.Trace.event trace ~trace_id ~tag:"done" "x";
    Sim.Trace.Flight.note f ~trace_id ~started
  in
  note_request ~trace_id:7 ~ms:50 ~events:2;
  note_request ~trace_id:8 ~ms:20 ~events:1;
  note_request ~trace_id:9 ~ms:30 ~events:1;
  check_int "top-K caps the window's pins" 2 (Sim.Trace.Flight.pinned f);
  (* Wrap the ring completely with unrelated noise. *)
  for i = 0 to 63 do
    Sim.Trace.event trace ~trace_id:(1000 + i) ~tag:"noise" "x"
  done;
  check_bool "ring evicted the outlier's events" true
    (not (List.exists (fun e -> e.Sim.Trace.trace_id = 7) (Sim.Trace.events trace)));
  match Sim.Trace.Flight.outliers f with
  | [ a; b ] ->
    check_int "slowest first" 7 a.Sim.Trace.Flight.trace_id;
    check_int "second slowest retained, faster one evicted" 9 b.Sim.Trace.Flight.trace_id;
    check_int "pinned events survive ring eviction" 3
      (List.length a.Sim.Trace.Flight.events);
    check_bool "latency measured from submit" true
      (a.Sim.Trace.Flight.latency_us >= 50_000.0);
    check_bool "pin captured before eviction is complete" false
      a.Sim.Trace.Flight.incomplete;
    (* The pinned outliers export as a self-contained Perfetto trace. *)
    (match Sim.Json.of_string (Sim.Json.to_string (Sim.Trace_export.outliers_to_json f)) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "outlier export does not round-trip: %s" e)
  | os -> Alcotest.failf "expected 2 pinned outliers, got %d" (List.length os)

(* --- cross-node causal DAG ----------------------------------------------------- *)

(* One isolated write; its net.transit spans must form a connected causal
   chain across the cluster: client -> leader (request), leader -> both
   followers (propose), followers -> leader (acks), leader -> client
   (reply). ack_coalesce is zero in [test_config], so every ack is tagged
   with the write it covers. *)
let test_transit_dag_connected () =
  let engine, cluster = boot () in
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 42 in
  (match put_sync engine client key "c" "v" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "put failed: %a" Client.pp_error e);
  let trace_id = Sim.Trace.request_trace_id ~client:(Client.id client) ~request_id:0 in
  let transits =
    List.filter
      (fun e ->
        e.Sim.Trace.trace_id = trace_id && String.equal e.Sim.Trace.tag "net.transit")
      (Sim.Trace.events (Cluster.trace cluster))
  in
  (* Pair each transit start (src node) with its end (dst node). *)
  let hops =
    List.filter_map
      (fun e ->
        if e.Sim.Trace.kind <> Sim.Trace.Span_start then None
        else
          match
            List.find_opt
              (fun e' ->
                e'.Sim.Trace.kind = Sim.Trace.Span_end
                && e'.Sim.Trace.span_id = e.Sim.Trace.span_id)
              transits
          with
          | Some e' ->
            check_bool "hop does not go back in time" true
              Sim.Sim_time.(e'.Sim.Trace.at >= e.Sim.Trace.at);
            Some (e.Sim.Trace.node, e'.Sim.Trace.node)
          | None -> None)
      transits
  in
  let cid = Client.id client in
  let leader =
    match List.find_opt (fun (src, _) -> src = cid) hops with
    | Some (_, l) -> l
    | None -> Alcotest.fail "no client -> leader hop"
  in
  let followers =
    List.sort_uniq compare
      (List.filter_map (fun (s, d) -> if s = leader && d <> cid then Some d else None) hops)
  in
  check_bool "leader proposed to both followers" true (List.length followers >= 2);
  List.iter
    (fun fl ->
      check_bool (Printf.sprintf "follower %d acked back to the leader" fl) true
        (List.mem (fl, leader) hops))
    followers;
  check_bool "leader replied to the client" true (List.mem (leader, cid) hops);
  (* Connectivity: every node the request touched is reachable from the
     client by following hops. *)
  let nodes = List.sort_uniq compare (List.concat_map (fun (s, d) -> [ s; d ]) hops) in
  let reachable = Hashtbl.create 8 in
  Hashtbl.replace reachable cid ();
  let rec grow () =
    let grew = ref false in
    List.iter
      (fun (s, d) ->
        if Hashtbl.mem reachable s && not (Hashtbl.mem reachable d) then begin
          Hashtbl.replace reachable d ();
          grew := true
        end)
      hops;
    if !grew then grow ()
  in
  grow ();
  List.iter
    (fun n ->
      check_bool (Printf.sprintf "node %d reachable from the client" n) true
        (Hashtbl.mem reachable n))
    nodes

(* --- conservation: segments sum to the measured latency ------------------------ *)

let prop_critpath_conservation =
  QCheck.Test.make ~name:"critpath: segments sum to client latency (within 1%)" ~count:6
    QCheck.(triple (int_range 1 6) (int_range 2 8) (int_bound 999))
    (fun (writers, tenths, salt) ->
      let config = { test_config with Config.trace_capacity = 1 lsl 18 } in
      let engine, cluster = boot ~config ~seed:(1000 + salt) () in
      let client = Cluster.new_client cluster in
      let cursor = ref 0 in
      let rec writer () =
        let key =
          Partition.key_of_int (Cluster.partition cluster)
            (!cursor * 97 mod config.Config.key_space)
        in
        incr cursor;
        Client.put client key "c" ~value:"v" (fun _ -> writer ())
      in
      for _ = 1 to writers do
        writer ()
      done;
      Sim.Engine.run_for engine (Sim.Sim_time.ms (tenths * 100));
      let trace = Cluster.trace cluster in
      let analysis =
        Sim.Critpath.analyze ~dropped:(Sim.Trace.dropped trace)
          ~events:(Sim.Trace.events trace) ()
      in
      if analysis.Sim.Critpath.requests = [] then
        QCheck.Test.fail_report "no analyzable requests";
      List.for_all
        (fun r -> Sim.Critpath.conservation_error r <= 0.01)
        analysis.Sim.Critpath.requests)

let suite =
  [
    Alcotest.test_case "trace: ring overwrites oldest and counts drops" `Quick
      test_ring_buffer_overwrite;
    Alcotest.test_case "trace: span ids unique and paired" `Quick test_span_ids_unique;
    Alcotest.test_case "trace: disabled trace records nothing" `Quick test_disabled_trace_drops;
    Alcotest.test_case "metrics: ticker samples gauges into series" `Quick test_gauge_sampling;
    Alcotest.test_case "metrics: gauge series cap drops oldest" `Quick
      test_gauge_cap_drops_oldest;
    Alcotest.test_case "metrics: create-or-get by name" `Quick test_registry_create_or_get;
    Alcotest.test_case "metrics: percentile cache invalidated by record" `Quick
      test_histogram_percentile_cache;
    Alcotest.test_case "export: Perfetto JSON round-trips" `Quick test_perfetto_roundtrip;
    Alcotest.test_case "spans: every committed write covers all four phases" `Slow
      test_write_path_span_coverage;
    Alcotest.test_case "flight: pins survive ring eviction" `Quick
      test_flight_pins_survive_eviction;
    Alcotest.test_case "critpath: transit DAG connects client, leader, followers" `Slow
      test_transit_dag_connected;
    QCheck_alcotest.to_alcotest prop_critpath_conservation;
    Alcotest.test_case "timeline: failover analysis measures the outage" `Slow
      test_failover_timeline;
  ]
