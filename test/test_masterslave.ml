(* Tests for the master-slave baseline, including the exact Figure 1
   failure sequence that motivates Paxos replication (§1.1). *)

open Masterslave

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let boot () =
  let engine = Sim.Engine.create () in
  (engine, Ms_pair.create engine ~disk:Sim.Disk_model.Ssd ())

let await engine cell =
  let deadline = Sim.Sim_time.add (Sim.Engine.now engine) (Sim.Sim_time.sec 30) in
  let rec loop () =
    match !cell with
    | Some v -> v
    | None ->
      if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then Alcotest.fail "await timeout"
      else begin
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        loop ()
      end
  in
  loop ()

let put engine pair key value =
  let r = ref None in
  Ms_pair.put pair ~key ~value (fun x -> r := Some x);
  await engine r

let get engine pair key =
  let r = ref None in
  Ms_pair.get pair ~key (fun x -> r := Some (Some x));
  Option.join (await engine r)

let test_replicated_writes () =
  let engine, pair = boot () in
  check_bool "write ok" true (Result.is_ok (put engine pair "k" "v"));
  Alcotest.(check (option string)) "readable" (Some "v") (get engine pair "k");
  check_int "master lsn" 1 (Ms_pair.committed_lsn pair Ms_pair.Master);
  check_int "slave lsn (forced first)" 1 (Ms_pair.committed_lsn pair Ms_pair.Slave)

let test_slave_down_master_continues () =
  let engine, pair = boot () in
  ignore (put engine pair "a" "1");
  Ms_pair.crash pair Ms_pair.Slave;
  check_bool "still available" true (Ms_pair.available_for_writes pair);
  check_bool "write ok" true (Result.is_ok (put engine pair "b" "2"));
  check_int "master ahead" 2 (Ms_pair.committed_lsn pair Ms_pair.Master);
  check_int "slave behind" 1 (Ms_pair.committed_lsn pair Ms_pair.Slave)

let test_master_down_synced_slave_promotes () =
  let engine, pair = boot () in
  ignore (put engine pair "a" "1");
  Ms_pair.crash pair Ms_pair.Master;
  Alcotest.(check (option Alcotest.string))
    "slave serves reads after promotion" (Some "1") (get engine pair "a");
  check_bool "writes continue" true (Result.is_ok (put engine pair "b" "2"))

let test_figure_1_unavailability () =
  let engine, pair = boot () in
  (* (a) both up, LSN=10. *)
  for i = 1 to 10 do
    ignore (put engine pair (Printf.sprintf "k%d" i) "v")
  done;
  check_int "both at 10" 10 (Ms_pair.committed_lsn pair Ms_pair.Slave);
  (* (b) slave goes down. *)
  Ms_pair.crash pair Ms_pair.Slave;
  (* master continues accepting writes up to LSN=20... *)
  for i = 11 to 20 do
    ignore (put engine pair (Printf.sprintf "k%d" i) "v")
  done;
  check_int "master at 20" 20 (Ms_pair.committed_lsn pair Ms_pair.Master);
  (* (c) ...but then also goes down. *)
  Ms_pair.crash pair Ms_pair.Master;
  (* (d) the slave comes back with the master still down: it cannot accept
     reads or writes, since it does not have the latest database state. *)
  Ms_pair.restart pair Ms_pair.Slave;
  check_bool "UNAVAILABLE with one node up" false (Ms_pair.available_for_writes pair);
  check_bool "writes rejected" true (Result.is_error (put engine pair "k21" "v"));
  Alcotest.(check (option string)) "reads rejected" None (get engine pair "k1");
  (* Moreover: if the master's disk is destroyed, committed writes 11..20
     are lost forever. *)
  Ms_pair.destroy pair Ms_pair.Master;
  check_int "ten committed writes lost" 10 (Ms_pair.lost_writes pair)

let test_slave_resync_on_rejoin () =
  let engine, pair = boot () in
  ignore (put engine pair "a" "1");
  Ms_pair.crash pair Ms_pair.Slave;
  ignore (put engine pair "b" "2");
  Ms_pair.restart pair Ms_pair.Slave;
  check_int "slave resynced" 2 (Ms_pair.committed_lsn pair Ms_pair.Slave);
  (* Now the failover in the other order is safe. *)
  Ms_pair.crash pair Ms_pair.Master;
  check_bool "available after resync" true (Ms_pair.available_for_writes pair);
  Alcotest.(check (option string)) "state intact" (Some "2") (get engine pair "b")

let test_spinnaker_survives_figure_1_sequence () =
  (* The contrast experiment: Spinnaker under the same failure sequence
     stays available and loses nothing, because a write needs a majority and
     recovery re-proposes unresolved writes (§8.1). *)
  let open Spinnaker in
  let config =
    {
      Config.default with
      Config.nodes = 3;
      disk = Sim.Disk_model.Ssd;
      session_timeout = Sim.Sim_time.ms 500;
      commit_period = Sim.Sim_time.ms 200;
    }
  in
  let engine = Sim.Engine.create () in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  check_bool "ready" true (Cluster.run_until_ready cluster);
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 7 in
  let put_s v =
    let r = ref None in
    Client.put client key "c" ~value:v (fun x -> r := Some x);
    await engine r
  in
  let get_s () =
    let r = ref None in
    Client.get client key "c" (fun x -> r := Some x);
    match await engine r with Ok Client.{ value; _ } -> value | Error _ -> None
  in
  ignore (put_s "ten");
  let range = Partition.route (Cluster.partition cluster) key in
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  let n0 = List.nth members 1 in
  (* One replica down: writes continue (majority alive). *)
  Cluster.crash_node cluster n0;
  check_bool "write with 1 down" true (Result.is_ok (put_s "twenty"));
  (* It comes back while another goes down: still available, still correct. *)
  Cluster.restart_node cluster n0;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 3);
  let n1 = List.nth members 0 in
  Cluster.crash_node cluster n1;
  check_bool "write after failover" true (Result.is_ok (put_s "thirty"));
  Alcotest.(check (option string)) "nothing lost" (Some "thirty") (get_s ())

let test_destroyed_node_stays_down () =
  let engine, pair = boot () in
  ignore (put engine pair "a" "1");
  Ms_pair.destroy pair Ms_pair.Slave;
  Ms_pair.restart pair Ms_pair.Slave;
  (* A destroyed disk cannot come back with data; the pair runs on the
     master alone, and nothing committed is lost while it survives. *)
  check_bool "still master-only" true (Ms_pair.acting_master pair = Some Ms_pair.Master);
  check_bool "writes continue" true (Result.is_ok (put engine pair "b" "2"));
  check_int "no loss while master lives" 0 (Ms_pair.lost_writes pair)

let test_reads_route_to_acting_master () =
  let engine, pair = boot () in
  ignore (put engine pair "k" "v");
  Ms_pair.crash pair Ms_pair.Master;
  (* The synced slave promoted; reads served from its copy. *)
  Alcotest.(check (option string)) "promoted reads" (Some "v") (get engine pair "k");
  Ms_pair.restart pair Ms_pair.Master;
  (* The old master rejoins as the new slave and resyncs. *)
  ignore (put engine pair "k2" "v2");
  check_int "old master resynced" 2 (Ms_pair.committed_lsn pair Ms_pair.Master)

let suite =
  [
    Alcotest.test_case "replicated writes" `Quick test_replicated_writes;
    Alcotest.test_case "destroyed node stays down" `Quick test_destroyed_node_stays_down;
    Alcotest.test_case "reads follow the acting master" `Quick test_reads_route_to_acting_master;
    Alcotest.test_case "slave down: master continues" `Quick test_slave_down_master_continues;
    Alcotest.test_case "master down: synced slave promotes" `Quick
      test_master_down_synced_slave_promotes;
    Alcotest.test_case "Figure 1: unavailable with one node down" `Quick
      test_figure_1_unavailability;
    Alcotest.test_case "slave resync on rejoin" `Quick test_slave_resync_on_rejoin;
    Alcotest.test_case "Spinnaker survives the Figure 1 sequence" `Slow
      test_spinnaker_survives_figure_1_sequence;
  ]
