(* Jepsen-style nemesis runs: lossy and asymmetric network faults, randomized
   partition/heal schedules composed with crash chaos, duplicated deliveries,
   and coordination-service cuts.

   The chaos property drives every seed through the same gauntlet and then
   asserts the paper's §1.1 claims the hard way:

   - no acked write is ever lost (final version >= acked count per key);
   - no write — acked or retried — is applied twice (final version <= acked +
     indeterminate, and no origin appears twice in the committed log);
   - strong reads stay linearizable throughout (history checker).

   A failing seed prints its injection log and is reproducible alone with
   e.g. [NEMESIS_SEEDS=7 dune exec test/test_main.exe -- test nemesis]. To
   replay an explicit fault schedule instead of a seed — a shrunk
   MINIMAL_SCHEDULE artifact, say — point [NEMESIS_SCHEDULE] at the JSON
   file (a bare schedule array or a verdict object with an [injections]
   field); the chaos test then re-executes those injections through the
   {!Workload.Chaos} harness and fails with the verdict's violations. *)

open Spinnaker
module History = Workload.History
module Lsn = Storage.Lsn

let check_bool = Alcotest.(check bool)

let test_config =
  {
    Config.default with
    Config.nodes = 5;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

let all_nodes = [ 0; 1; 2; 3; 4 ]

(* --- satellite: exponential chaos samples are clamped to >= 1 µs ---------- *)

let test_chaos_clamps_zero_mean () =
  let engine = Sim.Engine.create ~seed:3 () in
  let failure = Sim.Failure.create engine in
  let engages = ref 0 and disengages = ref 0 in
  let tog =
    Sim.Failure.toggle ~label:"zero-mean"
      ~engage:(fun () -> incr engages)
      ~disengage:(fun () -> incr disengages)
  in
  Sim.Failure.toggle_chaos failure ~mean_time_to_fault:(Sim.Sim_time.us 0)
    ~mean_time_to_heal:(Sim.Sim_time.us 0)
    ~until:(Sim.Sim_time.at_us 2_000) [ tog ];
  (* A zero-mean exponential would sample 0 µs forever and pin the clock at
     t=0; the >= 1 µs clamp makes the schedule advance and terminate. *)
  Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
  check_bool "schedule advanced" true (!engages > 50 && !disengages > 50);
  check_bool "bounded by until" true (!engages <= 2_001)

(* --- satellite: ZK-only cut — leader steps down, majority side elects ----- *)

let test_zk_cut_leader_steps_down () =
  let engine = Sim.Engine.create ~seed:11 () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  check_bool "ready" true (Cluster.run_until_ready cluster);
  let range = 0 in
  let old_leader = Option.get (Cluster.leader_of cluster ~range) in
  let failure = Sim.Failure.create engine in
  (* Cut ONLY the leader's link to the coordination service: the data network
     and the node itself keep running. *)
  let cut =
    Sim.Failure.toggle
      ~label:(Printf.sprintf "zk-cut-n%d" old_leader)
      ~engage:(fun () -> Cluster.set_zk_reachable cluster old_leader false)
      ~disengage:(fun () -> Cluster.set_zk_reachable cluster old_leader true)
  in
  let now = Sim.Engine.now engine in
  Sim.Failure.toggle_for failure
    ~at:(Sim.Sim_time.add now (Sim.Sim_time.ms 100))
    ~down_for:(Sim.Sim_time.sec 3) cut;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  (* The old leader's session is gone: it must have stepped down (it declared
     the session dead client-side before the server could expire it and hand
     leadership elsewhere), and the majority side elected a replacement. *)
  (match Node.cohort (Cluster.node cluster old_leader) ~range with
  | Some c ->
    check_bool "old leader stepped down" true (Cohort.role c <> Cohort.Leader)
  | None -> Alcotest.fail "old leader hosts no cohort for range 0");
  let new_leader = Cluster.leader_of cluster ~range in
  check_bool "a new leader is open" true (new_leader <> None);
  check_bool "new leader is a different node" true (new_leader <> Some old_leader);
  (* Writes to the range keep succeeding while the cut lasts. *)
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 1 in
  let r = ref None in
  Client.put client key "c" ~value:"during-cut" (fun x -> r := Some x);
  let rec drive n =
    match !r with
    | Some v -> v
    | None when n = 0 -> Error Client.Timed_out
    | None ->
      Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
      drive (n - 1)
  in
  check_bool "write succeeds under the cut" true (Result.is_ok (drive 500));
  (* Heal (toggle_for disengages at 3.1 s): the old leader reconnects with a
     fresh session and falls back in line as a follower. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 4);
  (match Node.cohort (Cluster.node cluster old_leader) ~range with
  | Some c -> check_bool "old leader rejoined as follower" true (Cohort.role c = Cohort.Follower)
  | None -> ());
  check_bool "range still has a leader" true (Cluster.leader_of cluster ~range <> None)

let chaos_seeds () =
  match Sys.getenv_opt "NEMESIS_SEEDS" with
  | Some s -> (
    match
      String.split_on_char ',' s
      |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
    with
    | [] -> Alcotest.failf "NEMESIS_SEEDS=%S contains no seeds (expected e.g. \"15\" or \"3,7,21\")" s
    | seeds -> seeds)
  | None -> List.init 20 (fun i -> i + 1)

(* --- satellite: lease fencing — no stale strong read across a ZK cut ------ *)

(* Aggregated across seeds: the battery is only meaningful if some probes
   actually landed in the lapsed-lease window (refused) and some were served
   under a live lease. One seed's timing might miss the window; twenty
   should not. *)
let total_lease_rejects = ref 0
let total_probe_serves = ref 0

(* One seed of the fencing oracle. Cut the leader's coordination link at a
   seed-jittered instant while a writer keeps bumping a counter key through
   the normal client (which fails over to the new leader) and a probe fires
   a strong read directly at the OLD leader every 10 ms. Each probe records
   the highest acked counter value at send time; a served reply below that
   floor is a stale strong read — the lease was supposed to fence it. The
   probe bypasses client routing on purpose: it keeps aiming at the deposed
   leader long after every well-behaved client has moved on. *)
let run_lease_fence_seed seed =
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then
    Alcotest.failf "seed %d: cluster never became ready" seed;
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 1 in
  let range = Partition.route (Cluster.partition cluster) key in
  let old_leader =
    match Cluster.leader_of cluster ~range with
    | Some l -> l
    | None -> Alcotest.failf "seed %d: range %d has no leader" seed range
  in
  (* Establish the counter at 0 synchronously so every probe has a floor. *)
  let acked = ref (-1) in
  let r0 = ref None in
  Client.put client key "c" ~value:"0" (fun x -> r0 := Some x);
  let rec settle n =
    match !r0 with
    | Some (Ok ()) -> acked := 0
    | Some (Error e) -> Alcotest.failf "seed %d: seed write failed: %a" seed Client.pp_error e
    | None when n = 0 -> Alcotest.failf "seed %d: seed write never settled" seed
    | None ->
      Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
      settle (n - 1)
  in
  settle 500;
  (* Writer: one outstanding put at a time; acked only counts clean acks
     (a timed-out put is indeterminate and must not raise the floor). *)
  let next = ref 0 in
  let writer_idle = ref true in
  let launch_write () =
    writer_idle := false;
    incr next;
    let n = !next in
    Client.put client key "c" ~value:(string_of_int n) (fun r ->
        writer_idle := true;
        match r with
        | Ok () -> if n > !acked then acked := n
        | Error _ -> ())
  in
  (* Probe endpoint: raw network peer, outside the client id space. *)
  let net = Cluster.net cluster in
  let probe_id = 90_000 + seed in
  let sent = Hashtbl.create 64 in
  let stale = ref [] in
  let serves = ref 0 in
  let refusals = ref 0 in
  Sim.Network.register net ~node:probe_id (fun env ->
      match env.Sim.Network.payload with
      | Message.Reply { request_id; reply } -> (
        match Hashtbl.find_opt sent request_id with
        | None -> ()
        | Some floor_n -> (
          Hashtbl.remove sent request_id;
          match reply with
          | Message.Value { value = Some v; _ } ->
            incr serves;
            let n = int_of_string v in
            if n < floor_n then stale := (request_id, n, floor_n) :: !stale
          | Message.Value { value = None; _ } ->
            incr serves;
            if floor_n >= 0 then stale := (request_id, -1, floor_n) :: !stale
          | Message.Not_leader _ | Message.Unavailable -> incr refusals
          | _ -> ()))
      | _ -> ());
  (* Cut ONLY the leader's coordination link, at a seed-varied instant so
     the battery sweeps the probe/lapse phase alignment. *)
  let failure = Sim.Failure.create engine in
  let cut =
    Sim.Failure.toggle
      ~label:(Printf.sprintf "zk-cut-n%d" old_leader)
      ~engage:(fun () -> Cluster.set_zk_reachable cluster old_leader false)
      ~disengage:(fun () -> Cluster.set_zk_reachable cluster old_leader true)
  in
  let now = Sim.Engine.now engine in
  Sim.Failure.toggle_for failure
    ~at:(Sim.Sim_time.add now (Sim.Sim_time.ms (60 + (37 * seed mod 180))))
    ~down_for:(Sim.Sim_time.sec 2) cut;
  let rid = ref 0 in
  for i = 1 to 400 do
    incr rid;
    Hashtbl.replace sent !rid !acked;
    Sim.Network.send net ~src:probe_id ~dst:old_leader
      (Message.Request
         {
           client = probe_id;
           request_id = !rid;
           op = Message.Get { key; col = "c"; consistent = true; token = Lsn.zero };
         });
    if i mod 2 = 0 && !writer_idle then launch_write ();
    Sim.Engine.run_for engine (Sim.Sim_time.ms 10)
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  (match !stale with
  | [] -> ()
  | (rid, got, floor_n) :: _ ->
    Format.printf "@.lease-fence seed %d injection log:@.%a@.%a@." seed
      Sim.Failure.pp_injections failure Cluster.pp_status cluster;
    Alcotest.failf
      "seed %d: %d stale strong read(s) at the deposed leader (e.g. probe #%d read %d, %d \
       already acked)"
      seed (List.length !stale) rid got floor_n);
  check_bool
    (Printf.sprintf "seed %d: probes exercised the read path" seed)
    true
    (!serves + !refusals > 50);
  total_probe_serves := !total_probe_serves + !serves;
  total_lease_rejects :=
    !total_lease_rejects + (Cluster.read_serve_stats cluster).Cluster.lease_rejects

let test_lease_fencing () =
  List.iter run_lease_fence_seed (chaos_seeds ());
  check_bool "some probes were served under a live lease" true (!total_probe_serves > 0);
  check_bool "some probes hit the lapsed-lease refusal window" true (!total_lease_rejects > 0)

(* --- the chaos property --------------------------------------------------- *)

type outcome = { mutable acked : int; mutable indeterminate : int }

let dump_injections ?cluster seed failure =
  Format.printf "@.nemesis seed %d injection log:@.%a@." seed Sim.Failure.pp_injections
    failure;
  match cluster with
  | Some c ->
    Format.printf "%a@." Cluster.pp_status c;
    (* Ship the failure with its latency evidence: the flight recorder's
       pinned outlier traces, openable in Perfetto next to the schedule. *)
    let flight = Cluster.flight c in
    if Sim.Trace.Flight.pinned flight > 0 then begin
      let path = Printf.sprintf "TRACE_outliers_nemesis_seed%d.json" seed in
      Sim.Trace_export.outliers_to_file flight path;
      Format.printf "outlier flight-recorder traces dumped to %s@." path
    end
  | None -> ()

(* Aggregated across seeds so the per-cause drop counters can be asserted
   meaningfully (one seed's schedule might not engage every fault kind). *)
let total_lost = ref 0
let total_partitioned = ref 0
let total_duplicated = ref 0

let run_chaos_seed seed =
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then
    Alcotest.failf "seed %d: cluster never became ready" seed;
  let net = Cluster.net cluster in
  let partition = Cluster.partition cluster in
  let failure = Sim.Failure.create engine in
  let history = History.create () in
  let keys = List.map (Partition.key_of_int partition) [ 3; 47; 91 ] in
  let outcomes = Hashtbl.create 8 in
  List.iter (fun key -> Hashtbl.replace outcomes key { acked = 0; indeterminate = 0 }) keys;
  let running = ref true in
  (* One serial writer per key: values are the write sequence number, so the
     store's version counter must end up exactly at the number of writes that
     actually applied. *)
  List.iter
    (fun key ->
      let client = Cluster.new_client cluster in
      let seq = ref 0 in
      let rec write_loop () =
        if !running then begin
          incr seq;
          let this = !seq in
          let invoked = Sim.Engine.now engine in
          Client.put client key "c" ~value:(string_of_int this) (fun result ->
              let o = Hashtbl.find outcomes key in
              if Result.is_ok result then o.acked <- o.acked + 1
              else o.indeterminate <- o.indeterminate + 1;
              History.record_write history ~key ~seq:this ~invoked
                ~completed:(Sim.Engine.now engine)
                ~acked:(Result.is_ok result);
              ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 60) write_loop))
        end
      in
      write_loop ())
    keys;
  (* Concurrent strong readers feeding the linearizability checker. *)
  List.iter
    (fun key ->
      let client = Cluster.new_client cluster in
      let rec read_loop () =
        if !running then begin
          let invoked = Sim.Engine.now engine in
          Client.get client key "c" (fun result ->
              (match result with
              | Ok Client.{ value; _ } ->
                History.record_read history ~key
                  ~observed:(Option.map int_of_string value)
                  ~invoked
                  ~completed:(Sim.Engine.now engine)
              | Error _ -> ());
              ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 45) read_loop))
        end
      in
      read_loop ())
    keys;
  (* The gauntlet: crash/restart chaos on two nodes, randomized symmetric and
     one-way pair partitions over the whole cluster, and episodes of message
     loss + duplication + delay jitter on every link — all at once. *)
  let until = Sim.Sim_time.at_us 10_000_000 in
  Sim.Failure.chaos failure
    ~mean_time_to_failure:(Sim.Sim_time.sec 3)
    ~mean_time_to_repair:(Sim.Sim_time.ms 1500)
    ~until
    (List.filteri (fun i _ -> i < 2) (Cluster.failure_targets cluster));
  Sim.Failure.random_pair_partition_chaos failure net ~nodes:all_nodes
    ~mean_time_to_fault:(Sim.Sim_time.ms 1500)
    ~mean_time_to_heal:(Sim.Sim_time.ms 700)
    ~until;
  let lossy =
    Sim.Failure.link_faults_toggle net ~loss:0.08 ~duplicate:0.08
      ~jitter:(Sim.Distribution.Uniform (0.0, 400.0))
      all_nodes
  in
  Sim.Failure.toggle_chaos failure
    ~mean_time_to_fault:(Sim.Sim_time.ms 900)
    ~mean_time_to_heal:(Sim.Sim_time.ms 900)
    ~until [ lossy ];
  Sim.Engine.run_for engine (Sim.Sim_time.sec 11);
  (* Stop the load, heal everything the chaos may have left engaged, and let
     the cluster quiesce: restarts, takeovers, catch-ups, retries. *)
  running := false;
  let stats = Sim.Network.stats net in
  total_lost := !total_lost + stats.Sim.Metrics.net_dropped_lost;
  total_partitioned := !total_partitioned + stats.Sim.Metrics.net_dropped_partitioned;
  total_duplicated := !total_duplicated + stats.Sim.Metrics.net_duplicated;
  if
    Sim.Network.messages_dropped net
    <> stats.Sim.Metrics.net_dropped_down + stats.Sim.Metrics.net_dropped_partitioned
       + stats.Sim.Metrics.net_dropped_lost
  then begin
    dump_injections ~cluster seed failure;
    Alcotest.failf "seed %d: drop counters do not decompose by cause" seed
  end;
  Sim.Network.heal net;
  Sim.Network.clear_default_faults net;
  List.iter
    (fun s ->
      List.iter
        (fun d -> if s <> d then Sim.Network.clear_link_faults net ~src:s ~dst:d)
        all_nodes)
    all_nodes;
  for i = 0 to test_config.Config.nodes - 1 do
    Cluster.restart_node cluster i (* no-op for nodes that are up *)
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 10);
  (* Final strong reads close the history and pin the per-key version. *)
  let final_client = Cluster.new_client cluster in
  List.iter
    (fun key ->
      let r = ref None in
      let invoked = Sim.Engine.now engine in
      Client.get final_client key "c" (fun x -> r := Some x);
      let rec drive n =
        match !r with
        | Some v -> v
        | None when n = 0 -> Error Client.Timed_out
        | None ->
          Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
          drive (n - 1)
      in
      match drive 3000 with
      | Ok Client.{ value; version } ->
        History.record_read history ~key
          ~observed:(Option.map int_of_string value)
          ~invoked
          ~completed:(Sim.Engine.now engine);
        let o = Hashtbl.find outcomes key in
        if version < o.acked then begin
          dump_injections ~cluster seed failure;
          Alcotest.failf "seed %d: key %s lost acked writes (version %d < %d acked)" seed
            key version o.acked
        end;
        if version > o.acked + o.indeterminate then begin
          dump_injections ~cluster seed failure;
          Alcotest.failf
            "seed %d: key %s applied writes twice (version %d > %d acked + %d indeterminate)"
            seed key version o.acked o.indeterminate
        end
      | _ ->
        dump_injections ~cluster seed failure;
        Alcotest.failf "seed %d: final read of %s failed after heal" seed key)
    keys;
  (* Exactly-once at the log level: in the committed prefix of the leader's
     log (minus logically truncated records), no (client, request id) origin
     may appear under two different LSNs — that would be a duplicated retry
     applied twice. *)
  for range = 0 to Partition.ranges partition - 1 do
    match Cluster.leader_of cluster ~range with
    | None ->
      dump_injections ~cluster seed failure;
      Alcotest.failf "seed %d: range %d has no open leader after heal" seed range
    | Some l -> (
      let node = Cluster.node cluster l in
      match Node.cohort node ~range with
      | None -> ()
      | Some c ->
        let skipped = Cohort.skipped_lsns c in
        let seen = Hashtbl.create 64 in
        List.iter
          (fun (lsn, _, _, origin) ->
            if not (List.exists (Lsn.equal lsn) skipped) then
              match origin with
              | None -> ()
              | Some o -> (
                match Hashtbl.find_opt seen o with
                | Some prev when not (Lsn.equal prev lsn) ->
                  dump_injections ~cluster seed failure;
                  Alcotest.failf
                    "seed %d: range %d origin (c%d,#%d) committed twice (lsn %s and %s)"
                    seed range (fst o) (snd o) (Lsn.to_string prev) (Lsn.to_string lsn)
                | _ -> Hashtbl.replace seen o lsn))
          (Storage.Wal.durable_writes_in (Node.wal node) ~cohort:range ~above:Lsn.zero
             ~upto:(Cohort.cmt c)))
  done;
  let violations = History.check history in
  if violations <> [] then begin
    dump_injections ~cluster seed failure;
    List.iter (fun v -> Format.printf "violation: %a@." History.pp_violation v) violations;
    Alcotest.failf "seed %d: %d linearizability violations" seed (List.length violations)
  end;
  check_bool
    (Printf.sprintf "seed %d: load was substantial" seed)
    true
    (History.writes history > 100 && History.reads history > 100)

(* Replay an explicit injection schedule (NEMESIS_SCHEDULE=<file>). The seed
   still feeds the workload streams — same seed + same schedule is the
   reproduction contract — so a verdict artifact's own [seed] field wins,
   then NEMESIS_SEEDS (first entry), then 1. *)
let run_schedule_replay path =
  let json =
    match Sim.Json.of_file path with
    | Error e -> Alcotest.failf "NEMESIS_SCHEDULE=%s: %s" path e
    | Ok json -> json
  in
  let schedule =
    match Workload.Chaos.schedule_of_artifact_json json with
    | Error e -> Alcotest.failf "NEMESIS_SCHEDULE=%s: %s" path e
    | Ok s -> s
  in
  let seed =
    match Sim.Json.member "seed" json with
    | Some (Sim.Json.Int s) -> s
    | _ -> List.hd (chaos_seeds ())
  in
  (* Same seed + same schedule + same code: a verdict artifact recorded with
     the planted bug enabled replays with it enabled, so the historical
     violation actually reproduces. *)
  let planted =
    match Sim.Json.member "planted_bug" json with
    | Some (Sim.Json.Bool b) -> b
    | _ -> false
  in
  Format.printf "replaying %d injections from %s (workload seed %d%s)@."
    (List.length schedule) path seed
    (if planted then ", planted bug enabled" else "");
  let v = Workload.Chaos.run_spinnaker ~schedule ~planted_hole_ack_bug:planted ~seed () in
  List.iter
    (fun (invariant, detail) -> Format.printf "violation %s: %s@." invariant detail)
    v.Workload.Chaos.violations;
  if Workload.Chaos.failed v then
    Alcotest.failf "schedule replay reproduced %d violation(s)"
      (List.length v.Workload.Chaos.violations)

(* --- the transaction gauntlet: 2PC under failover-mid-commit --------------- *)

(* Twenty seeds of cross-range bank transfers under crash chaos whose hazard
   rate spikes while transfers are mid-protocol, so coordinator and
   participant leaders die together between prepare and resolve. The verdict
   carries the §1.1-style claims for transactions: atomicity + conservation
   (snapshot audits), serializability of the committed history, and zero
   orphaned in-doubt intents after recovery. A failing seed ddmins its
   schedule to a minimal reproduction and dumps the flight recorder's
   outlier traces next to it. *)
let run_txn_bank_seed seed =
  let v = Workload.Chaos.run_txn_bank ~seed () in
  if Workload.Chaos.failed v then begin
    Format.printf "@.txn-bank seed %d violations:@." seed;
    List.iter
      (fun (invariant, detail) -> Format.printf "  %s: %s@." invariant detail)
      v.Workload.Chaos.violations;
    (match v.Workload.Chaos.outliers with
    | Some json ->
      let path = Printf.sprintf "TRACE_outliers_txn_seed%d.json" seed in
      Sim.Json.to_file path json;
      Format.printf "outlier flight-recorder traces dumped to %s@." path
    | None -> ());
    (match Workload.Chaos.shrink_txn_bank ~seed () with
    | Some (minimal_verdict, minimal, stats) ->
      let path = Printf.sprintf "MINIMAL_SCHEDULE_txn_seed%d.json" seed in
      Sim.Json.to_file path
        (Workload.Chaos.json_of_verdict { minimal_verdict with schedule = minimal });
      Format.printf "ddmin: %d -> %d injections in %d replays; artifact: %s@."
        stats.Sim.Shrink.initial_injections stats.Sim.Shrink.final_injections
        stats.Sim.Shrink.replays path
    | None -> Format.printf "violation did not survive schedule replay (flaky exposure)@.");
    Alcotest.failf "seed %d: %d transaction invariant violation(s)" seed
      (List.length v.Workload.Chaos.violations)
  end;
  check_bool
    (Printf.sprintf "seed %d: transfers committed under chaos" seed)
    true (v.Workload.Chaos.acked > 0);
  check_bool
    (Printf.sprintf "seed %d: nothing left unresolved" seed)
    true
    (v.Workload.Chaos.indeterminate = 0)

let test_txn_chaos_battery () = List.iter run_txn_bank_seed (chaos_seeds ())

let test_chaos_survival () =
  match Sys.getenv_opt "NEMESIS_SCHEDULE" with
  | Some path -> run_schedule_replay path
  | None ->
  let seeds = chaos_seeds () in
  List.iter run_chaos_seed seeds;
  check_bool "loss drops observed across seeds" true (!total_lost > 0);
  check_bool "partition drops observed across seeds" true (!total_partitioned > 0);
  check_bool "duplicated deliveries observed across seeds" true (!total_duplicated > 0)

let suite =
  [
    Alcotest.test_case "chaos schedules clamp zero-mean spans" `Quick
      test_chaos_clamps_zero_mean;
    Alcotest.test_case "ZK-only cut: leader steps down, majority re-elects" `Slow
      test_zk_cut_leader_steps_down;
    Alcotest.test_case "lease fencing: no stale strong reads across ZK cuts" `Slow
      test_lease_fencing;
    Alcotest.test_case "chaos: crashes + partitions + loss + duplication" `Slow
      test_chaos_survival;
    Alcotest.test_case "txn chaos: 2PC bank transfers under failover-mid-commit" `Slow
      test_txn_chaos_battery;
  ]
