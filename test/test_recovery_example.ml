(* Reproduction of the paper's Appendix B recovery example (Figure 10).

   Cohort = nodes A(0), B(1), C(2) for range 0. Initial durable state S0/S1:

     A: writes 1.1..1.20, last committed 1.20   (the old leader's log)
     B: writes 1.1..1.21, last committed 1.10
     C: writes 1.1..1.22, last committed 1.10

   All three nodes are down (S1). A and B come back: B must win the election
   (max lst = 1.21), re-propose and commit 1.11..1.21, bump the epoch, and
   accept new writes as 2.22..2.30 (S2, S3). When C finally returns, catch-up
   must logically truncate its never-committed write 1.22 — it lands on the
   skipped-LSN list and is never visible (S4). *)

open Spinnaker
module Lsn = Storage.Lsn
module Log_record = Storage.Log_record

let lsn e s = Lsn.make ~epoch:e ~seq:s

let test_config =
  {
    Config.default with
    Config.nodes = 3;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

let key_of cluster seq = Partition.key_of_int (Cluster.partition cluster) seq

(* Append writes 1.[from]..1.[upto] (key = its seq) plus a commit marker. *)
let populate cluster node ~upto ~cmt =
  let wal = Node.wal (Cluster.node cluster node) in
  for seq = 1 to upto do
    Storage.Wal.append wal
      (Log_record.write ~cohort:0 ~lsn:(lsn 1 seq) ~timestamp:seq
         (Log_record.Put
            { key = key_of cluster seq; col = "c"; value = Printf.sprintf "v%d" seq; version = seq }))
  done;
  Storage.Wal.append wal (Log_record.commit_upto ~cohort:0 (lsn 1 cmt));
  Storage.Wal.force wal (fun () -> ())

let await engine cell =
  let deadline = Sim.Sim_time.add (Sim.Engine.now engine) (Sim.Sim_time.sec 60) in
  let rec loop () =
    match !cell with
    | Some v -> v
    | None ->
      if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then Alcotest.fail "await timeout"
      else begin
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        loop ()
      end
  in
  loop ()

let cohort cluster node =
  match Node.cohort (Cluster.node cluster node) ~range:0 with
  | Some c -> c
  | None -> Alcotest.fail "missing cohort"

let figure_10 () =
  let engine = Sim.Engine.create ~seed:11 () in
  let cluster = Cluster.create engine test_config in
  let a = 0 and b = 1 and c = 2 in
  (* S0/S1: durable logs as in the paper; epoch 1 was in use. *)
  populate cluster a ~upto:20 ~cmt:20;
  populate cluster b ~upto:21 ~cmt:10;
  populate cluster c ~upto:22 ~cmt:10;
  let zk = Cluster.zk_server cluster in
  let session = Coord.Zk_server.open_session zk in
  ignore (Coord.Zk_server.set_data zk ~session ~path:"/ranges/0/epoch" ~data:"1");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 100);

  (* S1 -> S2: A and B come back up; C stays down. *)
  Node.start (Cluster.node cluster a);
  Node.start (Cluster.node cluster b);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);

  (* B is elected: it has the largest lst (1.21 > 1.20). *)
  Alcotest.(check (option int)) "B leads range 0" (Some b) (Cluster.leader_of cluster ~range:0);
  let cb = cohort cluster b and ca = cohort cluster a in
  Alcotest.(check string) "B committed through 1.21" "1.21" (Lsn.to_string (Cohort.cmt cb));
  Alcotest.(check bool) "epoch bumped to 2" true (Cohort.epoch cb = 2);
  (* The writes B re-proposed are now applied on both replicas. *)
  List.iter
    (fun node_cohort ->
      for seq = 11 to 21 do
        match Cohort.read_local node_cohort (key_of cluster seq, "c") with
        | Some cell ->
          Alcotest.(check (option string))
            (Printf.sprintf "seq %d applied" seq)
            (Some (Printf.sprintf "v%d" seq))
            cell.Storage.Row.value
        | None -> Alcotest.failf "write 1.%d lost after takeover" seq
      done)
    [ cb; ca ];

  (* S2 -> S3: the new epoch accepts writes 2.22..2.30. *)
  let client = Cluster.new_client cluster in
  for i = 1 to 9 do
    let r = ref None in
    Client.put client (key_of cluster (100 + i)) "c" ~value:(Printf.sprintf "new%d" i)
      (fun x -> r := Some x);
    Alcotest.(check bool) "new write ok" true (Result.is_ok (await engine r))
  done;
  Alcotest.(check string) "S3: B committed 2.30" "2.30" (Lsn.to_string (Cohort.cmt cb));

  (* S3 -> S4: C comes back and catches up. *)
  Node.restart (Cluster.node cluster c);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  let cc = cohort cluster c in
  Alcotest.(check string) "S4: C committed 2.30" "2.30" (Lsn.to_string (Cohort.cmt cc));
  (* 1.22 was never committed: logically truncated on C. *)
  Alcotest.(check (list string))
    "C skipped exactly 1.22"
    [ "1.22" ]
    (List.map Lsn.to_string (Cohort.skipped_lsns cc));
  (match Cohort.read_local cc (key_of cluster 22, "c") with
  | Some cell ->
    Alcotest.(check (option string))
      "k22 shows 1.22's value nowhere" None
      (if cell.Storage.Row.lsn = lsn 1 22 then cell.Storage.Row.value else None)
  | None -> ());
  (* C sees both the epoch-1 re-proposals and the epoch-2 writes. *)
  for seq = 11 to 21 do
    Alcotest.(check bool)
      (Printf.sprintf "C has 1.%d" seq)
      true
      (Cohort.read_local cc (key_of cluster seq, "c") <> None)
  done;
  for i = 1 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "C has 2.%d" (21 + i))
      true
      (Cohort.read_local cc (key_of cluster (100 + i), "c") <> None)
  done;
  (* And a crash/recovery on C must not resurrect 1.22 (the point of the
     skipped-LSN list: local recovery consults it). *)
  Node.crash (Cluster.node cluster c);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  Node.restart (Cluster.node cluster c);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  let cc = cohort cluster c in
  (match Cohort.read_local cc (key_of cluster 22, "c") with
  | Some cell ->
    Alcotest.(check bool) "1.22 stays dead after local recovery" false
      (Lsn.equal cell.Storage.Row.lsn (lsn 1 22))
  | None -> ())

let suite = [ Alcotest.test_case "Figure 10 walkthrough (S0-S4)" `Slow figure_10 ]
