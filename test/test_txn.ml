(* Transaction-layer tests: the QCheck differential against the plain write
   path, MVCC snapshot-visibility properties at the store, the
   serializability checker's anomaly fixtures, and the row-cache/snapshot
   isolation regression.

   The differential is the layering contract: a transaction with no reads
   and one single-cell write takes the blind fast path and must be
   byte-identical to [Client.put] — same messages, same timing, same
   history fingerprint — so the txn layer is a strict generalization of the
   write path rather than a parallel implementation that could drift. *)

open Spinnaker
module History = Workload.History
module Lsn = Storage.Lsn
module Row = Storage.Row
module Store = Storage.Store
module Wal = Storage.Wal
module Log_record = Storage.Log_record

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str_opt = Alcotest.(check (option string))

let lsn e s = Lsn.make ~epoch:e ~seq:s

let test_config =
  {
    Config.default with
    Config.nodes = 3;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

(* --- differential: 1-key txns vs the plain write path --------------------- *)

(* One schedule of single-key puts, executed either through [Client.put] or
   as 1-key transactions through [Txn.run]. Identical seed, cluster build,
   and inter-write gaps; the recorded history's fingerprint (keys, seqs,
   ack outcomes, invocation/completion sim-times) is the oracle. Any
   divergence — an extra message, a different retry, a shifted ack — moves
   a completion time and changes the digest. *)
let run_put_schedule ~as_txn ~seed ops =
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then
    Alcotest.failf "seed %d: cluster never became ready" seed;
  let client = Cluster.new_client cluster in
  let mgr = Txn.manager ~engine ~config:test_config client in
  let partition = Cluster.partition cluster in
  let history = History.create () in
  let seqs = Hashtbl.create 8 in
  List.iter
    (fun (key_idx, gap_ms) ->
      let key = Partition.key_of_int partition key_idx in
      let seq = 1 + (match Hashtbl.find_opt seqs key with Some n -> n | None -> 0) in
      Hashtbl.replace seqs key seq;
      let invoked = Sim.Engine.now engine in
      let settled = ref None in
      (if as_txn then
         Txn.run mgr ~reads:[]
           ~compute:(fun _ -> [ (key, "c", Some (string_of_int seq)) ])
           (fun outcome ->
             settled := Some (match outcome with Txn.Committed _ -> true | _ -> false))
       else
         Client.put client key "c" ~value:(string_of_int seq) (fun r ->
             settled := Some (Result.is_ok r)));
      let rec drive n =
        match !settled with
        | Some acked ->
          History.record_write history ~key ~seq ~invoked
            ~completed:(Sim.Engine.now engine) ~acked
        | None when n = 0 -> Alcotest.failf "seed %d: write never settled" seed
        | None ->
          Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
          drive (n - 1)
      in
      drive 2_000;
      if gap_ms > 0 then Sim.Engine.run_for engine (Sim.Sim_time.ms gap_ms))
    ops;
  History.fingerprint history

let prop_single_key_txn_differential =
  QCheck.Test.make ~name:"1-key txns are byte-identical to plain puts" ~count:300
    QCheck.(
      pair (int_bound 9_999)
        (list_of_size (Gen.int_range 1 5) (pair (int_bound 7) (int_bound 40))))
    (fun (seed, ops) ->
      String.equal
        (run_put_schedule ~as_txn:false ~seed ops)
        (run_put_schedule ~as_txn:true ~seed ops))

(* --- MVCC visibility at the store ----------------------------------------- *)

let make_store ?(cache_capacity = 0) () =
  let engine = Sim.Engine.create () in
  let disk = Sim.Resource.create engine ~name:"d" () in
  let model = Sim.Disk_model.create Sim.Disk_model.Ssd in
  let wal = Wal.create engine ~disk ~model ~rng:(Sim.Rng.create 1) () in
  Store.create ~cohort:0 ~wal ~cache_capacity ()

(* Version i of the test coordinate: LSN 1.i; plain writes carry value
   "p<i>", transactionally installed versions "t<i>" with commit timestamp
   i*100. *)
let coord = ("acct", "c")

let install_versions store kinds =
  List.iteri
    (fun j is_txn ->
      let i = j + 1 in
      let l = lsn 1 i in
      if is_txn then
        Store.apply store ~lsn:l ~timestamp:(i * 100)
          (Log_record.Txn_resolve
             {
               txn = Printf.sprintf "t%d" i;
               commit = true;
               ts = i * 100;
               writes = [ (fst coord, snd coord, Some (Printf.sprintf "t%d" i), i) ];
             })
      else
        Store.apply store ~lsn:l ~timestamp:(i * 100)
          (Log_record.Put
             { key = fst coord; col = snd coord; value = Printf.sprintf "p%d" i; version = i }))
    kinds

(* The reference visibility rule, computed over the abstract version list:
   a plain version is visible iff its LSN index is at or below the fence, a
   transactional version iff its commit timestamp is at or below the
   snapshot timestamp. The newest visible version wins; a version above the
   fence must never be served, nor an older one when a newer visible one
   exists ("overwritten at end_lsn <= B"). *)
let expected_visible kinds ~fence_idx ~fence_ts =
  let n = List.length kinds in
  let rec scan i =
    if i < 1 then None
    else
      let is_txn = List.nth kinds (i - 1) in
      let visible = if is_txn then i * 100 <= fence_ts else i <= fence_idx in
      if visible then Some (Printf.sprintf "%s%d" (if is_txn then "t" else "p") i)
      else scan (i - 1)
  in
  scan n

let prop_snapshot_visibility =
  QCheck.Test.make ~name:"snapshot_get matches the interval visibility rule" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 12) bool)
        (pair (int_bound 14) (int_bound 15)))
    (fun (kinds, (fence_idx, fts_raw)) ->
      let store = make_store () in
      install_versions store kinds;
      let fence = if fence_idx = 0 then Lsn.zero else lsn 1 fence_idx in
      let fence_ts = fts_raw * 100 in
      let got =
        match Store.snapshot_get store coord ~fence ~fence_ts with
        | Store.Snap_cell c -> c.Row.value
        | Store.Snap_none -> None
        | Store.Snap_blocked txn -> Some ("blocked:" ^ txn)
      in
      got = expected_visible kinds ~fence_idx ~fence_ts)

(* An unresolved intent at or below the fence blocks the snapshot reader —
   the owning transaction may yet commit inside the snapshot. Above the
   fence it is invisible and reads proceed. *)
let test_snapshot_blocked_by_intent () =
  let store = make_store () in
  Store.apply store ~lsn:(lsn 1 1) ~timestamp:100
    (Log_record.Put { key = fst coord; col = snd coord; value = "base"; version = 1 });
  Store.apply store ~lsn:(lsn 1 2) ~timestamp:200
    (Log_record.Txn_prepare
       {
         txn = "tx-blocking";
         anchor = fst coord;
         fence = lsn 1 1;
         writes = [ (fst coord, snd coord, Some "proposed") ];
       });
  (match Store.snapshot_get store coord ~fence:(lsn 1 2) ~fence_ts:1_000_000 with
  | Store.Snap_blocked txn -> Alcotest.(check string) "owner" "tx-blocking" txn
  | _ -> Alcotest.fail "intent at/below the fence must block the reader");
  (* A snapshot fenced below the prepare never sees the intent. *)
  (match Store.snapshot_get store coord ~fence:(lsn 1 1) ~fence_ts:1_000_000 with
  | Store.Snap_cell c -> check_str_opt "pre-intent version" (Some "base") c.Row.value
  | _ -> Alcotest.fail "intent above the fence must not block");
  (* Resolution unblocks: commit installs the final cell, clears the intent. *)
  Store.apply store ~lsn:(lsn 1 3) ~timestamp:300
    (Log_record.Txn_resolve
       {
         txn = "tx-blocking";
         commit = true;
         ts = 250;
         writes = [ (fst coord, snd coord, Some "proposed", 2) ];
       });
  match Store.snapshot_get store coord ~fence:(lsn 1 3) ~fence_ts:1_000_000 with
  | Store.Snap_cell c -> check_str_opt "resolved version" (Some "proposed") c.Row.value
  | _ -> Alcotest.fail "resolved write must be visible"

(* --- row-cache/snapshot isolation (the satellite bugfix) ------------------- *)

(* Cache the post-fence newest version via the plain read path, then read at
   an older fence: the snapshot must bypass the LRU row cache and serve the
   older version. Served-from-cache would be exactly the bug — the cache
   only knows "newest", not "newest visible at this fence". *)
let test_snapshot_reads_bypass_row_cache () =
  let store = make_store ~cache_capacity:8 () in
  Store.apply store ~lsn:(lsn 1 1) ~timestamp:100
    (Log_record.Put { key = fst coord; col = snd coord; value = "old"; version = 1 });
  Store.apply store ~lsn:(lsn 1 2) ~timestamp:200
    (Log_record.Put { key = fst coord; col = snd coord; value = "new"; version = 2 });
  (* Populate the cache with the newest version and prove it is hot. *)
  ignore (Store.get store coord);
  (match Store.get_profiled store coord with
  | Some c, Store.Cache_hit -> check_str_opt "cached newest" (Some "new") c.Row.value
  | _ -> Alcotest.fail "expected the newest version to be cached");
  let hits_before = Store.cache_hits store in
  (match Store.snapshot_get store coord ~fence:(lsn 1 1) ~fence_ts:1_000_000 with
  | Store.Snap_cell c -> check_str_opt "older fence, older version" (Some "old") c.Row.value
  | _ -> Alcotest.fail "snapshot read at the older fence lost the old version");
  check_int "snapshot read never touched the cache" hits_before (Store.cache_hits store)

(* --- serializability checker anomaly fixtures ------------------------------ *)

(* G1c, circular information flow: T1 reads y from T2 and writes x; T2 reads
   x from T1 and writes y. Two wr edges form a cycle no serial order
   satisfies. *)
let test_checker_catches_g1c () =
  let h = History.create () in
  History.record_txn h ~id:"t1" ~commit_ts:100 ~reads:[ ("y", Some "t2") ] ~writes:[ "x" ];
  History.record_txn h ~id:"t2" ~commit_ts:200 ~reads:[ ("x", Some "t1") ] ~writes:[ "y" ];
  check_bool "G1c cycle reported" true (History.check_serializable h <> [])

(* Lost update: T1 and T2 both read x from T0 and both write x. Whichever
   commits second overwrote a value it never observed — an rw/ww cycle. *)
let test_checker_catches_lost_update () =
  let h = History.create () in
  History.record_txn h ~id:"t0" ~commit_ts:50 ~reads:[] ~writes:[ "x" ];
  History.record_txn h ~id:"t1" ~commit_ts:100 ~reads:[ ("x", Some "t0") ] ~writes:[ "x" ];
  History.record_txn h ~id:"t2" ~commit_ts:150 ~reads:[ ("x", Some "t0") ] ~writes:[ "x" ];
  check_bool "lost update reported" true (History.check_serializable h <> [])

(* A read observing a writer that never committed is dirty by definition. *)
let test_checker_catches_phantom_writer () =
  let h = History.create () in
  History.record_txn h ~id:"t1" ~commit_ts:100 ~reads:[ ("x", Some "ghost") ] ~writes:[ "y" ];
  check_bool "uncommitted writer reported" true (History.check_serializable h <> [])

(* The clean fixture: a serial read-modify-write chain must pass, or the
   checker would drown real anomalies in noise. *)
let test_checker_accepts_serial_chain () =
  let h = History.create () in
  History.record_txn h ~id:"t0" ~commit_ts:50 ~reads:[] ~writes:[ "x"; "y" ];
  History.record_txn h ~id:"t1" ~commit_ts:100
    ~reads:[ ("x", Some "t0"); ("y", Some "t0") ]
    ~writes:[ "x" ];
  History.record_txn h ~id:"t2" ~commit_ts:150
    ~reads:[ ("x", Some "t1"); ("y", Some "t0") ]
    ~writes:[ "y" ];
  Alcotest.(check int) "serial chain is clean" 0 (List.length (History.check_serializable h))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_single_key_txn_differential;
    QCheck_alcotest.to_alcotest prop_snapshot_visibility;
    Alcotest.test_case "snapshot readers block on unresolved intents" `Quick
      test_snapshot_blocked_by_intent;
    Alcotest.test_case "snapshot reads bypass the row cache" `Quick
      test_snapshot_reads_bypass_row_cache;
    Alcotest.test_case "checker catches G1c circular information flow" `Quick
      test_checker_catches_g1c;
    Alcotest.test_case "checker catches lost updates" `Quick test_checker_catches_lost_update;
    Alcotest.test_case "checker catches reads of uncommitted writers" `Quick
      test_checker_catches_phantom_writer;
    Alcotest.test_case "checker accepts a serial chain" `Quick
      test_checker_accepts_serial_chain;
  ]
