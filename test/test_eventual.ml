(* Tests for the eventually consistent (Dynamo/Cassandra-style) baseline:
   consistency levels, last-writer-wins, read repair, hinted handoff,
   Merkle trees, and anti-entropy. *)

open Eventual
module Config = Spinnaker.Config
module Row = Storage.Row
module Lsn = Storage.Lsn

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_config =
  { Config.default with Config.nodes = 5; disk = Sim.Disk_model.Ssd }

let boot ?(anti_entropy = None) ?(config = test_config) () =
  let engine = Sim.Engine.create () in
  let cluster = Cas_cluster.create engine ?anti_entropy_period:anti_entropy config in
  Cas_cluster.start cluster;
  (engine, cluster)

let await engine cell =
  let deadline = Sim.Sim_time.add (Sim.Engine.now engine) (Sim.Sim_time.sec 60) in
  let rec loop () =
    match !cell with
    | Some v -> v
    | None ->
      if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then Alcotest.fail "await timeout"
      else begin
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        loop ()
      end
  in
  loop ()

let put_sync engine client ~level key value =
  let r = ref None in
  Cas_client.put client ~level key "c" ~value (fun x -> r := Some x);
  await engine r

let get_sync engine client ~level key =
  let r = ref None in
  Cas_client.get client ~level key "c" (fun x -> r := Some x);
  match await engine r with
  | Ok v -> Option.map (fun Cas_client.{ value; _ } -> value) v |> Option.join
  | Error `Timed_out -> Alcotest.fail "read timed out"

let key_for cluster i = Spinnaker.Partition.key_of_int (Cas_cluster.partition cluster) i

let test_write_read_roundtrip () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 42 in
  check_bool "quorum write" true
    (Result.is_ok (put_sync engine client ~level:Cas_message.Quorum key "hello"));
  Alcotest.(check (option string)) "quorum read" (Some "hello")
    (get_sync engine client ~level:Cas_message.Quorum key)

let test_weak_write_one_ack () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 50 in
  check_bool "weak write" true
    (Result.is_ok (put_sync engine client ~level:Cas_message.One key "v"));
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);
  Alcotest.(check (option string)) "readable" (Some "v")
    (get_sync engine client ~level:Cas_message.One key)

let test_last_writer_wins () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 60 in
  ignore (put_sync engine client ~level:Cas_message.Quorum key "first");
  ignore (put_sync engine client ~level:Cas_message.Quorum key "second");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 500);
  Alcotest.(check (option string)) "newest timestamp wins" (Some "second")
    (get_sync engine client ~level:Cas_message.Quorum key)

let test_delete_tombstone () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 61 in
  ignore (put_sync engine client ~level:Cas_message.Quorum key "x");
  let r = ref None in
  Cas_client.delete client ~level:Cas_message.Quorum key "c" (fun x -> r := Some x);
  check_bool "delete ok" true (Result.is_ok (await engine r));
  Sim.Engine.run_for engine (Sim.Sim_time.ms 500);
  Alcotest.(check (option string)) "tombstoned" None
    (get_sync engine client ~level:Cas_message.Quorum key)

let test_writes_survive_one_replica_down () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 70 in
  let range = Spinnaker.Partition.route (Cas_cluster.partition cluster) key in
  let members = Spinnaker.Partition.cohort (Cas_cluster.partition cluster) ~range in
  (* Kill the replica that is NOT first in line for coordination. *)
  (match List.rev members with last :: _ -> Cas_cluster.crash_node cluster last | [] -> ());
  check_bool "quorum write with 2/3 up" true
    (Result.is_ok (put_sync engine client ~level:Cas_message.Quorum key "v"));
  Alcotest.(check (option string)) "readable" (Some "v")
    (get_sync engine client ~level:Cas_message.Quorum key)

let test_hinted_handoff_heals_down_replica () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 80 in
  let range = Spinnaker.Partition.route (Cas_cluster.partition cluster) key in
  let members = Spinnaker.Partition.cohort (Cas_cluster.partition cluster) ~range in
  let victim = List.nth members 2 in
  Cas_cluster.crash_node cluster victim;
  ignore (put_sync engine client ~level:Cas_message.Quorum key "hinted");
  (* A hint accumulates at some coordinator for the dead replica. *)
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  let hints =
    Array.fold_left (fun acc n -> acc + Cas_node.hints_queued n) 0 (Cas_cluster.nodes cluster)
  in
  check_bool "hint queued" true (hints > 0);
  Cas_cluster.restart_node cluster victim;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);
  (* The hint was replayed: the recovered replica holds the write locally. *)
  (match Cas_node.read_local (Cas_cluster.node cluster victim) (key, "c") with
  | Some cell -> Alcotest.(check (option string)) "replayed" (Some "hinted") cell.Row.value
  | None -> Alcotest.fail "hint not replayed");
  let hints_after =
    Array.fold_left (fun acc n -> acc + Cas_node.hints_queued n) 0 (Cas_cluster.nodes cluster)
  in
  check_int "hints drained" 0 hints_after

let test_read_repair_fixes_stale_replica () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 90 in
  let range = Spinnaker.Partition.route (Cas_cluster.partition cluster) key in
  let members = Spinnaker.Partition.cohort (Cas_cluster.partition cluster) ~range in
  let victim = List.nth members 2 in
  ignore (put_sync engine client ~level:Cas_message.Quorum key "old");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 800);
  (* Take a replica down through an overwrite, then bring it back stale. *)
  Cas_cluster.crash_node cluster victim;
  ignore (put_sync engine client ~level:Cas_message.Quorum key "new");
  Cas_cluster.restart_node cluster victim;
  (* Drain hint replay noise, then force quorum reads until repair lands. *)
  let rec read_until_repaired attempts =
    if attempts = 0 then ()
    else begin
      ignore (get_sync engine client ~level:Cas_message.Quorum key);
      Sim.Engine.run_for engine (Sim.Sim_time.ms 300);
      match Cas_node.read_local (Cas_cluster.node cluster victim) (key, "c") with
      | Some cell when cell.Row.value = Some "new" -> ()
      | _ -> read_until_repaired (attempts - 1)
    end
  in
  read_until_repaired 30;
  match Cas_node.read_local (Cas_cluster.node cluster victim) (key, "c") with
  | Some cell -> Alcotest.(check (option string)) "repaired" (Some "new") cell.Row.value
  | None -> Alcotest.fail "value missing on stale replica"

let test_anti_entropy_converges_replicas () =
  let engine, cluster = boot ~anti_entropy:(Some (Sim.Sim_time.sec 2)) () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 95 in
  let range = Spinnaker.Partition.route (Cas_cluster.partition cluster) key in
  let members = Spinnaker.Partition.cohort (Cas_cluster.partition cluster) ~range in
  let victim = List.nth members 2 in
  Cas_cluster.crash_node cluster victim;
  ignore (put_sync engine client ~level:Cas_message.Quorum key "converged");
  (* Remove the coordinator hints so only anti-entropy can heal the replica. *)
  Cas_cluster.restart_node cluster victim;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 8);
  match Cas_node.read_local (Cas_cluster.node cluster victim) (key, "c") with
  | Some cell -> Alcotest.(check (option string)) "converged" (Some "converged") cell.Row.value
  | None -> Alcotest.fail "anti-entropy did not converge"

(* Weak writes trade durability for latency (§D.6.1): an ack from a single
   replica means one permanent failure can destroy committed data — unlike a
   quorum write (or any Spinnaker write), which survives any single loss. *)
let test_weak_write_loses_data_on_single_permanent_failure () =
  let engine, cluster = boot () in
  let client = Cas_cluster.new_client cluster in
  let key = key_for cluster 99 in
  let range = Spinnaker.Partition.route (Cas_cluster.partition cluster) key in
  let members = Spinnaker.Partition.cohort (Cas_cluster.partition cluster) ~range in
  (* Isolate every replica from the others: a weak write still succeeds
     (the coordinator acks itself), a quorum write could not. *)
  Sim.Network.partition (Cas_cluster.net cluster) [ List.hd members ] (List.tl members);
  Sim.Network.partition (Cas_cluster.net cluster) [ List.nth members 1 ]
    [ List.hd members; List.nth members 2 ];
  Sim.Network.partition (Cas_cluster.net cluster) [ List.nth members 2 ]
    [ List.hd members; List.nth members 1 ];
  let weak = put_sync engine client ~level:Cas_message.One key "fragile" in
  check_bool "weak write acked with replicas isolated" true (Result.is_ok weak);
  (* The only replica holding the write fails permanently. *)
  let holder =
    List.find
      (fun n -> Cas_node.read_local (Cas_cluster.node cluster n) (key, "c") <> None)
      members
  in
  Cas_cluster.crash_node cluster holder;
  Cas_node.lose_disk (Cas_cluster.node cluster holder);
  Sim.Network.heal (Cas_cluster.net cluster);
  Cas_cluster.restart_node cluster holder;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 3);
  (* The acked write is gone — on every replica. *)
  let survivors =
    List.filter
      (fun n -> Cas_node.read_local (Cas_cluster.node cluster n) (key, "c") <> None)
      members
  in
  check_int "committed-but-weak write lost" 0 (List.length survivors)

(* --- merkle ------------------------------------------------------------------ *)

let cells_of_list kvs =
  List.map
    (fun (k, v, ts) ->
      ( (k, "c"),
        Row.{ value = Some v; version = 1; lsn = Lsn.make ~epoch:0 ~seq:ts; timestamp = ts; txn_ts = None } ))
    (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) kvs)

let test_merkle_equal_trees () =
  let cells = cells_of_list [ ("a", "1", 1); ("b", "2", 2); ("c", "3", 3) ] in
  let t1 = Merkle.build cells and t2 = Merkle.build cells in
  check_bool "equal" true (Merkle.equal t1 t2);
  check_int "no diff" 0 (List.length (Merkle.diff t1 t2))

let test_merkle_detects_difference () =
  let t1 = Merkle.build (cells_of_list [ ("a", "1", 1); ("b", "2", 2) ]) in
  let t2 = Merkle.build (cells_of_list [ ("a", "1", 1); ("b", "DIFFERENT", 9) ]) in
  check_bool "unequal" false (Merkle.equal t1 t2);
  check_bool "diff contains b" true (List.mem ("b", "c") (Merkle.diff t1 t2))

let test_merkle_detects_missing_key () =
  let t1 = Merkle.build (cells_of_list [ ("a", "1", 1); ("b", "2", 2); ("z", "3", 3) ]) in
  let t2 = Merkle.build (cells_of_list [ ("a", "1", 1); ("b", "2", 2) ]) in
  check_bool "diff contains z" true (List.mem ("z", "c") (Merkle.diff t1 t2))

(* diff may overreport within a hash bucket but must never miss a divergent
   coordinate, and must be empty exactly when the trees are equal. *)
let prop_merkle_diff_complete =
  QCheck.Test.make ~name:"merkle: diff is complete (and empty iff equal)" ~count:100
    QCheck.(pair (list (pair (int_bound 20) small_nat)) (list (pair (int_bound 20) small_nat)))
    (fun (xs, ys) ->
      let dedupe l =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) l
        |> List.map (fun (k, v) -> (Printf.sprintf "k%02d" k, string_of_int v, v + 1))
      in
      let xs = dedupe xs and ys = dedupe ys in
      let t1 = Merkle.build (cells_of_list xs) and t2 = Merkle.build (cells_of_list ys) in
      let diff = Merkle.diff t1 t2 |> List.map fst in
      let expected =
        let module S = Set.Make (String) in
        let mx = List.map (fun (k, v, _) -> (k, v)) xs
        and my = List.map (fun (k, v, _) -> (k, v)) ys in
        let keys = S.union (S.of_list (List.map fst mx)) (S.of_list (List.map fst my)) in
        S.filter (fun k -> List.assoc_opt k mx <> List.assoc_opt k my) keys |> S.elements
      in
      List.for_all (fun k -> List.mem k diff) expected
      && (expected <> [] || diff = []))

let suite =
  [
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "weak write" `Quick test_weak_write_one_ack;
    Alcotest.test_case "last writer wins" `Quick test_last_writer_wins;
    Alcotest.test_case "delete tombstone" `Quick test_delete_tombstone;
    Alcotest.test_case "quorum write with replica down" `Quick test_writes_survive_one_replica_down;
    Alcotest.test_case "hinted handoff" `Quick test_hinted_handoff_heals_down_replica;
    Alcotest.test_case "read repair" `Quick test_read_repair_fixes_stale_replica;
    Alcotest.test_case "weak write lost on one permanent failure" `Quick
      test_weak_write_loses_data_on_single_permanent_failure;
    Alcotest.test_case "anti-entropy convergence" `Slow test_anti_entropy_converges_replicas;
    Alcotest.test_case "merkle: equality" `Quick test_merkle_equal_trees;
    Alcotest.test_case "merkle: value diff" `Quick test_merkle_detects_difference;
    Alcotest.test_case "merkle: missing key" `Quick test_merkle_detects_missing_key;
    QCheck_alcotest.to_alcotest prop_merkle_diff_complete;
  ]
