let () =
  Alcotest.run "spinnaker"
    [
      ("sim", Test_sim.suite);
      ("storage", Test_storage.suite);
      ("read-path", Test_read_path.suite);
      ("wal-properties", Test_wal_properties.suite);
      ("wal-differential", Test_wal_differential.suite);
      ("coord", Test_coord.suite);
      ("core-units", Test_core_units.suite);
      ("spinnaker", Test_spinnaker.suite);
      ("recovery-example", Test_recovery_example.suite);
      ("invariants", Test_invariants.suite);
      ("linearizability", Test_linearizability.suite);
      ("txn", Test_txn.suite);
      ("nemesis", Test_nemesis.suite);
      ("shrink", Test_shrink.suite);
      ("eventual", Test_eventual.suite);
      ("masterslave", Test_masterslave.suite);
      ("observability", Test_observability.suite);
      ("workload", Test_workload.suite);
      ("scaleout", Test_scaleout.suite);
      ("sync-api", Test_sync.suite);
    ]
