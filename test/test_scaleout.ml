(* Live membership change (§10): routing-table properties, differential
   bootstrap, deterministic migration and split runs, exactly-once across
   membership changes, and a chaos battery that crashes migration sources,
   joiners, and leaders mid-split.

   A failing chaos seed prints its injection log and is reproducible alone
   with e.g. [NEMESIS_SEEDS=7 dune exec test/test_main.exe -- test scaleout]. *)

open Spinnaker
module History = Workload.History
module Lsn = Storage.Lsn
module Row = Storage.Row
module Store = Storage.Store
module Wal = Storage.Wal
module Log_record = Storage.Log_record

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------------------------------------------------------------- *)
(* Routing-table properties: random split / join / leave schedules.        *)

let prop_nodes = 5
let prop_repl = 3
let prop_ks = 1_000

type layout_op =
  | Swap of int * int * int  (* range selector, member slot, replacement node *)
  | Split_mid of int  (* range selector; split at the midpoint of its bounds *)

let pp_layout_op = function
  | Swap (r, m, n) -> Printf.sprintf "Swap(%d,%d,%d)" r m n
  | Split_mid r -> Printf.sprintf "Split(%d)" r

let layout_op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun r m n -> Swap (r, m, n)) (int_bound 9_999) (int_bound (prop_repl - 1)) (int_bound 9));
        (2, map (fun r -> Split_mid r) (int_bound 9_999));
      ])

let arb_layout_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_layout_op ops))
    QCheck.Gen.(list_size (int_range 1 40) layout_op_gen)

let nth_range p sel =
  let ids = Partition.range_ids p in
  List.nth ids (sel mod List.length ids)

(* Apply one mutation; returns [true] iff the table reported a change. *)
let apply_layout_op p next_id op =
  match op with
  | Swap (r, slot, node) ->
    let range = nth_range p r in
    let members = Partition.cohort p ~range in
    if List.mem node members then
      (* Replacing a member with an existing member would shrink the cohort;
         the admin layer never asks for that. Re-asserting the current
         membership must be a version-preserving no-op (idempotent replay). *)
      Partition.set_members p ~range members
    else
      Partition.set_members p ~range
        (List.mapi (fun i m -> if i = slot then node else m) members)
  | Split_mid r ->
    let range = nth_range p r in
    let lo, hi = Partition.range_bounds p ~range in
    let lo = int_of_string lo and hi = int_of_string hi in
    if hi - lo < 2 then false
    else begin
      let at = Partition.key_of_int p ((lo + hi) / 2) in
      let id = !next_id in
      incr next_id;
      Partition.split p ~range ~at ~new_range:id
    end

let layout_invariants p =
  (* Descriptors tile [0, key_space): first lo is 0, each hi is the next lo,
     the last hi is the exclusive end of the key space. *)
  let descs = Partition.descs p in
  let rec tiles = function
    | (a : Partition.desc) :: (b :: _ as rest) -> a.hi = b.lo && tiles rest
    | [ last ] -> last.Partition.hi = Partition.key_of_int p prop_ks
    | [] -> false
  in
  (descs <> [] && (List.hd descs).Partition.lo = Partition.key_of_int p 0 && tiles descs)
  (* Every cohort stays at replication size with distinct members. *)
  && List.for_all
       (fun (d : Partition.desc) ->
         List.length d.members = prop_repl
         && List.length (List.sort_uniq compare d.members) = prop_repl)
       descs
  (* Every key routes to exactly one range, and that range's bounds hold it:
     with the tiling already checked, containment implies uniqueness. *)
  && List.for_all
       (fun k ->
         let range = Partition.route p (Partition.key_of_int p k) in
         let lo, hi = Partition.range_bounds p ~range in
         let key = Partition.key_of_int p k in
         String.compare lo key <= 0 && String.compare key hi < 0)
       (List.init 40 (fun i -> i * 25 mod prop_ks))

let prop_routing_invariants =
  QCheck.Test.make ~name:"routing: split/join/leave keeps tiling, cohorts, versions" ~count:200
    arb_layout_ops (fun ops ->
      let p = Partition.create ~nodes:prop_nodes ~replication:prop_repl ~key_space:prop_ks in
      let next_id = ref prop_nodes in
      List.for_all
        (fun op ->
          let before = Partition.version p in
          let changed = apply_layout_op p next_id op in
          let after = Partition.version p in
          (* Epochs are monotone: mutations bump, rejected ops leave alone. *)
          (if changed then after = before + 1 else after = before)
          && layout_invariants p)
        ops)

let prop_layout_convergence =
  QCheck.Test.make ~name:"routing: stale copies converge via published layouts" ~count:200
    arb_layout_ops (fun ops ->
      let master = Partition.create ~nodes:prop_nodes ~replication:prop_repl ~key_space:prop_ks in
      let client = Partition.copy master in
      let next_id = ref prop_nodes in
      let genesis = Partition.to_string master in
      let converged () =
        Partition.descs client = Partition.descs master
        && Partition.version client = Partition.version master
      in
      List.for_all
        (fun op ->
          ignore (apply_layout_op master next_id op);
          let behind = Partition.version client < Partition.version master in
          let published = Partition.to_string master in
          let refreshed = Partition.update_from_string client published in
          (* The refresh applies iff the client was actually behind, replaying
             the same layout is a no-op, and a stale (older) layout can never
             roll a fresher copy back. *)
          refreshed = behind
          && converged ()
          && (not (Partition.update_from_string client published))
          && (not (Partition.update_from_string client genesis))
          && converged ())
        ops)

(* ---------------------------------------------------------------------- *)
(* Differential bootstrap: snapshot ship + WAL catch-up == full history.   *)

type boot_op = Bput of int * int * int | Bdel of int * int | Bflush

let boot_keys = 8
let boot_cols = 2
let bkey k = Printf.sprintf "k%02d" k
let bcol c = Printf.sprintf "c%d" c

let boot_op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map3 (fun k c v -> Bput (k, c, v)) (int_bound (boot_keys - 1)) (int_bound (boot_cols - 1)) small_nat);
        (2, map2 (fun k c -> Bdel (k, c)) (int_bound (boot_keys - 1)) (int_bound (boot_cols - 1)));
        (2, return Bflush);
      ])

let pp_boot_op = function
  | Bput (k, c, v) -> Printf.sprintf "Put(%d,%d,%d)" k c v
  | Bdel (k, c) -> Printf.sprintf "Del(%d,%d)" k c
  | Bflush -> "Flush"

(* A schedule plus where the snapshot is cut and where the joiner crashes. *)
let arb_bootstrap =
  QCheck.make
    ~print:(fun (ops, cut, crash) ->
      Printf.sprintf "cut=%d%% crash=%d [%s]" cut crash
        (String.concat "; " (List.map pp_boot_op ops)))
    QCheck.Gen.(
      triple
        (list_size (int_range 4 120) boot_op_gen)
        (int_bound 100)
        (int_bound 100))

(* One replica = a WAL + store pair on a shared engine, mirroring how a
   cohort writes: log-append then apply, forces drained by the engine.
   Compaction is disabled on every replica so tombstone GC cannot introduce
   benign reference divergence (that case is test_read_path's subject). *)
let make_replica engine name =
  let disk = Sim.Resource.create engine ~name () in
  let model = Sim.Disk_model.create Sim.Disk_model.Ssd in
  let wal = Wal.create engine ~disk ~model ~rng:(Sim.Rng.create 7) ~max_batch:8 () in
  let store =
    Store.create ~cohort:0 ~wal ~compaction_fanin:max_int ~max_sstables:max_int
      ~cache_capacity:0 ()
  in
  (wal, store)

let op_of i = function
  | Bput (k, c, v) ->
    Some (Log_record.Put { key = bkey k; col = bcol c; value = string_of_int v; version = i })
  | Bdel (k, c) -> Some (Log_record.Delete { key = bkey k; col = bcol c; version = i })
  | Bflush -> None

let replica_apply engine (wal, store) i op =
  (match op_of i op with
  | Some rec_op ->
    let lsn = Lsn.make ~epoch:1 ~seq:i in
    Wal.append wal (Log_record.write ~cohort:0 ~lsn ~timestamp:i rec_op);
    Store.apply store ~lsn ~timestamp:i rec_op
  | None -> Store.flush store);
  Sim.Engine.run engine

let op_of_cell ((key, col) : Row.coord) (cell : Row.cell) =
  match cell.Row.value with
  | Some value -> Log_record.Put { key; col; value; version = cell.version }
  | None -> Log_record.Delete { key; col; version = cell.version }

(* Mirror of the learner's chunk install: WAL-append (unless the LSN is
   already durable from a previous attempt) then apply, force, ack. *)
let install_cells engine (wal, store) cells ~upto =
  let own = Store.durable_write_lsns_in store ~above:Lsn.zero ~upto in
  List.iter
    (fun ((coord, (cell : Row.cell)) : Row.coord * Row.cell) ->
      let op = op_of_cell coord cell in
      if not (List.exists (Lsn.equal cell.Row.lsn) own) then
        Wal.append wal (Log_record.write ~cohort:0 ~lsn:cell.Row.lsn ~timestamp:cell.Row.timestamp op);
      Store.apply store ~lsn:cell.Row.lsn ~timestamp:cell.Row.timestamp op)
    cells;
  Wal.force wal (fun () -> ());
  Sim.Engine.run engine

let same_cell (a : Row.cell option) (b : Row.cell option) =
  match (a, b) with
  | None, None -> true
  | Some x, Some y ->
    x.Row.value = y.Row.value && x.version = y.version && Lsn.equal x.lsn y.lsn
  | _ -> false

let chunk_list cells n =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | c :: rest ->
      if k = n then go (List.rev cur :: acc) [ c ] 1 rest else go acc (c :: cur) (k + 1) rest
  in
  go [] [] 0 cells

let prop_bootstrap_differential =
  QCheck.Test.make
    ~name:"bootstrap: snapshot + catch-up replica == full-history replica" ~count:120
    arb_bootstrap (fun (ops, cut_pct, crash_sel) ->
      let engine = Sim.Engine.create ~seed:13 () in
      let donor = make_replica engine "donor" in
      let reference = make_replica engine "reference" in
      let joiner = make_replica engine "joiner" in
      let n = List.length ops in
      let cut = 1 + (cut_pct * (n - 1) / 100) in
      (* The donor runs the whole history; the snapshot is its state at the
         cut. The reference replays the full history independently. *)
      List.iteri (fun i op -> replica_apply engine reference (i + 1) op) ops;
      List.iteri
        (fun i op -> if i + 1 <= cut then replica_apply engine donor (i + 1) op)
        ops;
      let snapshot = Store.all_cells (snd donor) in
      let upto = Lsn.make ~epoch:1 ~seq:cut in
      List.iteri
        (fun i op -> if i + 1 > cut then replica_apply engine donor (i + 1) op)
        ops;
      (* Ship the snapshot in chunks. One attempt may die mid-transfer: the
         joiner crashes (volatile state gone), recovers from its own durable
         log, and the migration restarts from chunk zero — the re-install
         must be idempotent over whatever survived. *)
      let chunks = chunk_list snapshot 5 in
      let crash_at =
        if crash_sel mod 3 = 0 || chunks = [] then None
        else Some (crash_sel mod List.length chunks)
      in
      (match crash_at with
      | Some k ->
        List.iteri
          (fun i chunk -> if i <= k then install_cells engine joiner chunk ~upto)
          chunks;
        Wal.crash (fst joiner);
        Store.crash (snd joiner);
        ignore (Store.recover_all (snd joiner));
        Sim.Engine.run engine
      | None -> ());
      List.iter (fun chunk -> install_cells engine joiner chunk ~upto) chunks;
      (* WAL catch-up from the snapshot horizon: the donor serves its
         committed writes in (upto, end] — from its log, or from SSTables
         once flush checkpoints have rolled the log past the horizon. The
         donor's tail is forced first: catch-up only ever serves committed
         writes, and commit implies the leader already forced them. *)
      Wal.force (fst donor) (fun () -> ());
      Sim.Engine.run engine;
      let tail =
        Store.committed_cells_in (snd donor) ~above:upto ~upto:(Lsn.make ~epoch:1 ~seq:n)
      in
      install_cells engine joiner tail ~upto:(Lsn.make ~epoch:1 ~seq:n);
      (* Observable equivalence with the full-history replica, tombstones
         included (they carry the version counter conditional puts see). *)
      let pp_cell = function
        | None -> "None"
        | Some (c : Row.cell) ->
          Printf.sprintf "{v=%s ver=%d lsn=%s}"
            (Option.value ~default:"<tomb>" c.Row.value)
            c.version (Lsn.to_string c.lsn)
      in
      List.for_all
        (fun k ->
          List.for_all
            (fun c ->
              let coord = (bkey k, bcol c) in
              let j = Store.get (snd joiner) coord and r = Store.get (snd reference) coord in
              let ok =
                same_cell j r && Store.read (snd joiner) coord = Store.read (snd reference) coord
              in
              if not ok then
                Printf.printf "DIFF %s.%s joiner=%s reference=%s\n" (bkey k) (bcol c)
                  (pp_cell j) (pp_cell r);
              ok)
            (List.init boot_cols Fun.id))
        (List.init boot_keys Fun.id))

(* ---------------------------------------------------------------------- *)
(* Cluster-level helpers.                                                  *)

let test_config =
  {
    Config.default with
    Config.nodes = 5;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

let await engine ?(timeout = 30.0) cond =
  let deadline =
    Sim.Sim_time.add (Sim.Engine.now engine) (Sim.Sim_time.of_sec_f timeout)
  in
  let rec go () =
    if cond () then true
    else if Sim.Engine.now engine >= deadline then false
    else begin
      Sim.Engine.run_for engine (Sim.Sim_time.ms 20);
      go ()
    end
  in
  go ()

let drive engine r =
  let rec go n =
    match !r with
    | Some v -> v
    | None when n = 0 -> Error Client.Timed_out
    | None ->
      Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
      go (n - 1)
  in
  go 2000

let put_sync engine client key value =
  let r = ref None in
  Client.put client key "c" ~value (fun x -> r := Some x);
  drive engine r

let get_sync engine client key =
  let r = ref None in
  Client.get client key "c" (fun x -> r := Some x);
  drive engine r

(* Keep asking the range's leader to run the migration until the membership
   change lands: a busy leader refuses and a timed-out migration aborts
   cleanly, so the kick is safe to repeat. *)
let migrate engine cluster ~range ~joiner ~remove =
  await engine ~timeout:60.0 (fun () ->
      let partition = Cluster.partition cluster in
      List.mem joiner (Partition.cohort partition ~range)
      ||
      (ignore (Cluster.request_join cluster ~range ~joiner ~remove ());
       false))

let split engine cluster ~range =
  let before = Partition.ranges (Cluster.partition cluster) in
  await engine ~timeout:60.0 (fun () ->
      Partition.ranges (Cluster.partition cluster) > before
      ||
      (ignore (Cluster.request_split cluster ~range);
       false))

(* ---------------------------------------------------------------------- *)
(* Deterministic migration: snapshot, catch-up, swap, donor retirement.    *)

let test_migration_end_to_end () =
  let engine = Sim.Engine.create ~seed:21 () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  check_bool "ready" true (Cluster.run_until_ready cluster);
  let partition = Cluster.partition cluster in
  let client = Cluster.new_client cluster in
  (* Seed data across every range before the topology moves. *)
  for k = 0 to 49 do
    let key = Partition.key_of_int partition (k * 2_000) in
    check_bool "seed write" true (Result.is_ok (put_sync engine client key (Printf.sprintf "v%d" k)))
  done;
  let stale_client = Cluster.new_client cluster in
  ignore (get_sync engine stale_client (Partition.key_of_int partition 0));
  let range = 0 in
  let old_members = Partition.cohort partition ~range in
  let leader = Option.get (Cluster.leader_of cluster ~range) in
  let donor = List.find (fun n -> n <> leader) old_members in
  let joiner = Cluster.add_node cluster in
  check_int "new node id" test_config.Config.nodes joiner;
  check_bool "migration completes" true (migrate engine cluster ~range ~joiner ~remove:donor);
  let members = Partition.cohort partition ~range in
  check_bool "joiner swapped in" true (List.mem joiner members);
  check_bool "donor swapped out" false (List.mem donor members);
  check_int "cohort back at replication size" test_config.Config.replication
    (List.length members);
  (* The donor learns of the committed change and drops the replica. *)
  check_bool "donor retires its replica" true
    (await engine ~timeout:10.0 (fun () ->
         Node.cohort (Cluster.node cluster donor) ~range = None));
  (* The joiner is a full replica now — promoted out of learner state and
     holding the migrated data locally. *)
  (match Node.cohort (Cluster.node cluster joiner) ~range with
  | None -> Alcotest.fail "joiner hosts no replica"
  | Some c ->
    (* Promotion rides the replicated log: the joiner flips out of learner
       state when the committed [Cohort_change] reaches it on the next
       commit tick. *)
    check_bool "joiner is promoted out of learner state" true
      (await engine ~timeout:5.0 (fun () ->
           (not (Cohort.is_learner c)) && Lsn.(Cohort.cmt c > Lsn.zero)));
    let key = Partition.key_of_int partition 2_000 in
    check_bool "joiner holds migrated data" true
      (match Cohort.read_local c (key, "c") with
      | Some cell -> cell.Row.value = Some "v1"
      | None -> false));
  (* A client whose cached routing table predates the migration still reads
     and writes: the cohort's leader never moved. *)
  for k = 0 to 9 do
    let key = Partition.key_of_int partition (k * 2_000) in
    match get_sync engine stale_client key with
    | Ok Client.{ value; _ } ->
      Alcotest.(check (option string)) "stale client reads" (Some (Printf.sprintf "v%d" k)) value
    | Error _ -> Alcotest.failf "stale client read of key %d failed" (k * 2_000)
  done;
  check_bool "writes to the new cohort succeed" true
    (Result.is_ok (put_sync engine client (Partition.key_of_int partition 100) "post-migration"))

(* ---------------------------------------------------------------------- *)
(* Deterministic split: both children serve, stale clients converge.       *)

let test_split_end_to_end () =
  let engine = Sim.Engine.create ~seed:22 () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  check_bool "ready" true (Cluster.run_until_ready cluster);
  let partition = Cluster.partition cluster in
  let client = Cluster.new_client cluster in
  (* Populate range 0 ([0, 20000) with the default key space) densely enough
     for a median split point to exist. *)
  for k = 0 to 119 do
    let key = Partition.key_of_int partition (k * 150) in
    check_bool "seed write" true (Result.is_ok (put_sync engine client key (Printf.sprintf "v%d" k)))
  done;
  (* This client's cached layout predates the split. *)
  let stale_client = Cluster.new_client cluster in
  ignore (get_sync engine stale_client (Partition.key_of_int partition 0));
  let range = 0 in
  let parent_members = Partition.cohort partition ~range in
  let _, old_hi = Partition.range_bounds partition ~range in
  check_bool "split completes" true (split engine cluster ~range);
  check_bool "both children elect leaders" true
    (await engine ~timeout:20.0 (fun () -> Cluster.is_ready cluster));
  let child = test_config.Config.nodes in
  check_bool "child range allocated from /next_range" true
    (Partition.mem_range partition ~range:child);
  (* The children tile exactly the parent's old interval with its cohort. *)
  let _, parent_hi = Partition.range_bounds partition ~range in
  let child_lo, child_hi = Partition.range_bounds partition ~range:child in
  check_bool "parent ends where child begins" true (parent_hi = child_lo);
  check_bool "child ends at the parent's old bound" true (child_hi = old_hi);
  Alcotest.(check (list int)) "child inherits the cohort" parent_members
    (Partition.cohort partition ~range:child);
  (* Every pre-split key is still readable through a stale routing table:
     keys in the child half bounce off the parent with Wrong_range, the
     client refreshes from /layout and retries. *)
  for k = 0 to 119 do
    let key = Partition.key_of_int partition (k * 150) in
    match get_sync engine stale_client key with
    | Ok Client.{ value; _ } ->
      Alcotest.(check (option string)) "stale client reads across split"
        (Some (Printf.sprintf "v%d" k)) value
    | Error _ -> Alcotest.failf "stale read of key %d failed after split" (k * 150)
  done;
  (* Writes land on both sides of the split point. *)
  check_bool "write to parent half" true
    (Result.is_ok (put_sync engine stale_client (Partition.key_of_int partition 1) "left"));
  check_bool "write to child half" true
    (Result.is_ok
       (put_sync engine stale_client (Partition.key_of_int partition 17_999) "right"));
  check_int "post-split routing: left key" range
    (Partition.route partition (Partition.key_of_int partition 1));
  check_int "post-split routing: right key" child
    (Partition.route partition (Partition.key_of_int partition 17_999))

(* ---------------------------------------------------------------------- *)
(* Exactly-once across membership changes: a serial writer must never see   *)
(* its writes double-applied while a migration and a split commit.          *)

let test_epoch_change_exactly_once () =
  let engine = Sim.Engine.create ~seed:23 () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  check_bool "ready" true (Cluster.run_until_ready cluster);
  let partition = Cluster.partition cluster in
  let key = Partition.key_of_int partition 5_000 (* range 0 *) in
  let client = Cluster.new_client cluster in
  (* Populate range 0 beyond the hot key so the later split has a median. *)
  for k = 0 to 59 do
    check_bool "seed write" true
      (Result.is_ok
         (put_sync engine client (Partition.key_of_int partition (k * 300)) "seed"))
  done;
  let acked = ref 0 and indeterminate = ref 0 and running = ref true in
  let seq = ref 0 in
  let rec write_loop () =
    if !running then begin
      incr seq;
      Client.put client key "c" ~value:(string_of_int !seq) (fun result ->
          if Result.is_ok result then incr acked else incr indeterminate;
          ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 40) write_loop))
    end
  in
  write_loop ();
  Sim.Engine.run_for engine (Sim.Sim_time.ms 500);
  (* Swap a follower out for a fresh node, then split the range — both
     membership changes commit under the live write stream. *)
  let range = 0 in
  let leader = Option.get (Cluster.leader_of cluster ~range) in
  let donor =
    List.find (fun n -> n <> leader) (Partition.cohort partition ~range)
  in
  let joiner = Cluster.add_node cluster in
  check_bool "migration under load completes" true
    (migrate engine cluster ~range ~joiner ~remove:donor);
  check_bool "split under load completes" true (split engine cluster ~range);
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  running := false;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  check_bool "load spanned the changes" true (!acked > 30);
  (* The store's version counter counts applied writes exactly. *)
  (match get_sync engine (Cluster.new_client cluster) key with
  | Ok Client.{ version; _ } ->
    check_bool
      (Printf.sprintf "no lost writes (version %d >= %d acked)" version !acked)
      true (version >= !acked);
    check_bool
      (Printf.sprintf "no double applies (version %d <= %d acked + %d indeterminate)"
         version !acked !indeterminate)
      true
      (version <= !acked + !indeterminate)
  | Error _ -> Alcotest.fail "final read failed");
  (* Log-level exactly-once: no (client, request id) origin may be committed
     under two LSNs in the range that owns the key now. *)
  let owner = Partition.route partition key in
  match Cluster.leader_of cluster ~range:owner with
  | None -> Alcotest.fail "owning range has no leader"
  | Some l -> (
    let node = Cluster.node cluster l in
    match Node.cohort node ~range:owner with
    | None -> Alcotest.fail "leader hosts no cohort"
    | Some c ->
      let skipped = Cohort.skipped_lsns c in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (lsn, _, _, origin) ->
          if not (List.exists (Lsn.equal lsn) skipped) then
            match origin with
            | None -> ()
            | Some o -> (
              match Hashtbl.find_opt seen o with
              | Some prev when not (Lsn.equal prev lsn) ->
                Alcotest.failf "origin (c%d,#%d) committed twice (lsn %s and %s)" (fst o)
                  (snd o) (Lsn.to_string prev) (Lsn.to_string lsn)
              | _ -> Hashtbl.replace seen o lsn))
        (Storage.Wal.durable_writes_in (Node.wal node) ~cohort:owner ~above:Lsn.zero
           ~upto:(Cohort.cmt c)))

(* ---------------------------------------------------------------------- *)
(* The chaos battery: scale-out events racing crashes, partitions, loss.    *)

type outcome = { mutable acked : int; mutable indeterminate : int }

let dump_injections ?cluster seed failure =
  Format.printf "@.scaleout seed %d injection log:@.%a@." seed Sim.Failure.pp_injections
    failure;
  match cluster with
  | Some c -> Format.printf "%a@." Cluster.pp_status c
  | None -> ()

(* Aggregated across seeds: individual schedules may keep aborting a
   migration, but the battery as a whole must actually exercise completed
   joins and splits under fire, or it proves nothing about them. *)
let total_joins = ref 0
let total_splits = ref 0

let run_chaos_seed seed =
  let engine = Sim.Engine.create ~seed:(1000 + seed) () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then
    Alcotest.failf "seed %d: cluster never became ready" seed;
  let net = Cluster.net cluster in
  let partition = Cluster.partition cluster in
  let failure = Sim.Failure.create engine in
  let history = History.create () in
  let keys = List.map (Partition.key_of_int partition) [ 3; 5_003; 40_007 ] in
  let outcomes = Hashtbl.create 8 in
  List.iter (fun key -> Hashtbl.replace outcomes key { acked = 0; indeterminate = 0 }) keys;
  let running = ref true in
  List.iter
    (fun key ->
      let client = Cluster.new_client cluster in
      let seq = ref 0 in
      let rec write_loop () =
        if !running then begin
          incr seq;
          let this = !seq in
          let invoked = Sim.Engine.now engine in
          Client.put client key "c" ~value:(string_of_int this) (fun result ->
              let o = Hashtbl.find outcomes key in
              if Result.is_ok result then o.acked <- o.acked + 1
              else o.indeterminate <- o.indeterminate + 1;
              History.record_write history ~key ~seq:this ~invoked
                ~completed:(Sim.Engine.now engine)
                ~acked:(Result.is_ok result);
              ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 60) write_loop))
        end
      in
      write_loop ())
    keys;
  List.iter
    (fun key ->
      let client = Cluster.new_client cluster in
      let rec read_loop () =
        if !running then begin
          let invoked = Sim.Engine.now engine in
          Client.get client key "c" (fun result ->
              (match result with
              | Ok Client.{ value; _ } ->
                History.record_read history ~key
                  ~observed:(Option.map int_of_string value)
                  ~invoked
                  ~completed:(Sim.Engine.now engine)
              | Error _ -> ());
              ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 45) read_loop))
        end
      in
      read_loop ())
    keys;
  (* The scale-out events under attack. The joiner arrives at 0.5 s; the
     migration (of the range owning the first written key) and a split (of
     the range owning the second) are kicked repeatedly — the crash and
     partition chaos below keeps hitting the source, the joiner, and the
     leader mid-transfer, so attempts abort and restart throughout. *)
  let joiner = Cluster.add_node cluster in
  let mig_range = Partition.route partition (List.nth keys 0) in
  let split_range = Partition.route partition (List.nth keys 1) in
  let ranges_before = Partition.ranges partition in
  let rec kick_join () =
    if !running && not (List.mem joiner (Partition.cohort partition ~range:mig_range))
    then begin
      let members = Partition.cohort partition ~range:mig_range in
      let leader = Cluster.leader_of cluster ~range:mig_range in
      (match List.filter (fun n -> Some n <> leader) members with
      | d :: _ -> ignore (Cluster.request_join cluster ~range:mig_range ~joiner ~remove:d ())
      | [] -> ());
      ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 400) kick_join)
    end
  in
  let rec kick_split () =
    if !running && Partition.ranges partition = ranges_before then begin
      ignore (Cluster.request_split cluster ~range:split_range);
      ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 400) kick_split)
    end
  in
  ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 500) kick_join);
  ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 1500) kick_split);
  (* The gauntlet, aimed at the migration: crash/restart chaos covers the
     joiner plus a rotating pair of original nodes (the migration source and
     the leader are among them across seeds), with randomized pair
     partitions and lossy/duplicating links over the whole grown cluster. *)
  let all_nodes = List.init (test_config.Config.nodes + 1) Fun.id in
  let until = Sim.Sim_time.at_us 8_000_000 in
  let targets = Cluster.failure_targets cluster in
  let crash_targets =
    List.filteri
      (fun i _ -> i = joiner || i = seed mod joiner || i = (seed + 2) mod joiner)
      targets
  in
  Sim.Failure.chaos failure
    ~mean_time_to_failure:(Sim.Sim_time.sec 3)
    ~mean_time_to_repair:(Sim.Sim_time.ms 1500)
    ~until crash_targets;
  Sim.Failure.random_pair_partition_chaos failure net ~nodes:all_nodes
    ~mean_time_to_fault:(Sim.Sim_time.ms 1500)
    ~mean_time_to_heal:(Sim.Sim_time.ms 700)
    ~until;
  let lossy =
    Sim.Failure.link_faults_toggle net ~loss:0.06 ~duplicate:0.06
      ~jitter:(Sim.Distribution.Uniform (0.0, 400.0))
      all_nodes
  in
  Sim.Failure.toggle_chaos failure
    ~mean_time_to_fault:(Sim.Sim_time.ms 900)
    ~mean_time_to_heal:(Sim.Sim_time.ms 900)
    ~until [ lossy ];
  Sim.Engine.run_for engine (Sim.Sim_time.sec 9);
  (* Stop the load, heal everything, and let the cluster quiesce. *)
  running := false;
  Sim.Network.heal net;
  Sim.Network.clear_default_faults net;
  List.iter
    (fun s ->
      List.iter
        (fun d -> if s <> d then Sim.Network.clear_link_faults net ~src:s ~dst:d)
        all_nodes)
    all_nodes;
  for i = 0 to Array.length (Cluster.nodes cluster) - 1 do
    Cluster.restart_node cluster i (* no-op for nodes that are up *)
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 10);
  if List.mem joiner (Partition.cohort partition ~range:mig_range) then incr total_joins;
  if Partition.ranges partition > ranges_before then incr total_splits;
  (* Whatever the chaos left of the topology, it must be coherent: tiling
     intact, cohorts at replication size, a leader per range. *)
  check_bool
    (Printf.sprintf "seed %d: layout coherent after chaos" seed)
    true
    (List.for_all
       (fun range ->
         List.length (Partition.cohort partition ~range) = test_config.Config.replication)
       (Partition.range_ids partition));
  (* Final strong reads close the history and pin the per-key version. *)
  let final_client = Cluster.new_client cluster in
  List.iter
    (fun key ->
      let r = ref None in
      let invoked = Sim.Engine.now engine in
      Client.get final_client key "c" (fun x -> r := Some x);
      let rec drive n =
        match !r with
        | Some v -> v
        | None when n = 0 -> Error Client.Timed_out
        | None ->
          Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
          drive (n - 1)
      in
      match drive 3000 with
      | Ok Client.{ value; version } ->
        History.record_read history ~key
          ~observed:(Option.map int_of_string value)
          ~invoked
          ~completed:(Sim.Engine.now engine);
        let o = Hashtbl.find outcomes key in
        if version < o.acked then begin
          dump_injections ~cluster seed failure;
          Alcotest.failf "seed %d: key %s lost acked writes (version %d < %d acked)" seed
            key version o.acked
        end;
        if version > o.acked + o.indeterminate then begin
          dump_injections ~cluster seed failure;
          Alcotest.failf
            "seed %d: key %s applied writes twice (version %d > %d acked + %d indeterminate)"
            seed key version o.acked o.indeterminate
        end
      | _ ->
        dump_injections ~cluster seed failure;
        Alcotest.failf "seed %d: final read of %s failed after heal" seed key)
    keys;
  (* Exactly-once at the log level, over whatever ranges now exist. *)
  List.iter
    (fun range ->
      match Cluster.leader_of cluster ~range with
      | None ->
        dump_injections ~cluster seed failure;
        Alcotest.failf "seed %d: range %d has no open leader after heal" seed range
      | Some l -> (
        let node = Cluster.node cluster l in
        match Node.cohort node ~range with
        | None -> ()
        | Some c ->
          let skipped = Cohort.skipped_lsns c in
          let seen = Hashtbl.create 64 in
          List.iter
            (fun (lsn, _, _, origin) ->
              if not (List.exists (Lsn.equal lsn) skipped) then
                match origin with
                | None -> ()
                | Some o -> (
                  match Hashtbl.find_opt seen o with
                  | Some prev when not (Lsn.equal prev lsn) ->
                    dump_injections ~cluster seed failure;
                    Alcotest.failf
                      "seed %d: range %d origin (c%d,#%d) committed twice (lsn %s and %s)"
                      seed range (fst o) (snd o) (Lsn.to_string prev) (Lsn.to_string lsn)
                  | _ -> Hashtbl.replace seen o lsn))
            (Storage.Wal.durable_writes_in (Node.wal node) ~cohort:range ~above:Lsn.zero
               ~upto:(Cohort.cmt c))))
    (Partition.range_ids partition);
  let violations = History.check history in
  if violations <> [] then begin
    dump_injections ~cluster seed failure;
    List.iter (fun v -> Format.printf "violation: %a@." History.pp_violation v) violations;
    Alcotest.failf "seed %d: %d linearizability violations" seed (List.length violations)
  end;
  check_bool
    (Printf.sprintf "seed %d: load was substantial" seed)
    true
    (History.writes history > 100 && History.reads history > 100)

let chaos_seeds () =
  match Sys.getenv_opt "NEMESIS_SEEDS" with
  | Some s -> (
    match
      String.split_on_char ',' s
      |> List.filter_map (fun x -> int_of_string_opt (String.trim x))
    with
    | [] ->
      Alcotest.failf "NEMESIS_SEEDS=%S contains no seeds (expected e.g. \"15\" or \"3,7,21\")" s
    | seeds -> seeds)
  | None -> List.init 20 (fun i -> i + 1)

let test_chaos_scaleout () =
  let seeds = chaos_seeds () in
  List.iter run_chaos_seed seeds;
  Format.printf "scaleout chaos: %d/%d joins and %d/%d splits completed under fire@."
    !total_joins (List.length seeds) !total_splits (List.length seeds);
  if List.length seeds > 4 then begin
    check_bool "some migrations completed under chaos" true (!total_joins > 0);
    check_bool "some splits completed under chaos" true (!total_splits > 0)
  end

let suite =
  [
    QCheck_alcotest.to_alcotest prop_routing_invariants;
    QCheck_alcotest.to_alcotest prop_layout_convergence;
    QCheck_alcotest.to_alcotest prop_bootstrap_differential;
    Alcotest.test_case "migration: snapshot + catch-up + swap + retire" `Slow
      test_migration_end_to_end;
    Alcotest.test_case "split: both children serve, stale clients converge" `Slow
      test_split_end_to_end;
    Alcotest.test_case "exactly-once across migration and split" `Slow
      test_epoch_change_exactly_once;
    Alcotest.test_case "chaos: crashes + partitions + loss during scale-out" `Slow
      test_chaos_scaleout;
  ]
