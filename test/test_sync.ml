(* Tests for the synchronous convenience API. *)

open Spinnaker

let check_bool = Alcotest.(check bool)

let boot () =
  let engine = Sim.Engine.create () in
  let config =
    { Config.default with Config.nodes = 3; disk = Sim.Disk_model.Ssd }
  in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then Alcotest.fail "not ready";
  (engine, cluster, Cluster.new_client cluster)

let test_sync_roundtrip () =
  let engine, cluster, client = boot () in
  let key = Partition.key_of_int (Cluster.partition cluster) 5 in
  check_bool "put" true (Result.is_ok (Sync.put engine client key "c" ~value:"v"));
  (match Sync.get engine client key "c" with
  | Ok Client.{ value; version } ->
    Alcotest.(check (option string)) "value" (Some "v") value;
    Alcotest.(check int) "version" 1 version
  | Error e -> Alcotest.failf "get: %a" Sync.pp_error e);
  check_bool "conditional" true
    (Result.is_ok (Sync.conditional_put engine client key "c" ~value:"w" ~expected:1));
  check_bool "delete" true (Result.is_ok (Sync.delete engine client key "c"));
  match Sync.get engine client key "c" with
  | Ok Client.{ value; _ } -> Alcotest.(check (option string)) "deleted" None value
  | Error e -> Alcotest.failf "get after delete: %a" Sync.pp_error e

let test_sync_txn_and_scan () =
  let engine, cluster, client = boot () in
  let key i = Partition.key_of_int (Cluster.partition cluster) i in
  check_bool "txn" true
    (Result.is_ok
       (Sync.transact_put engine client [ (key 1, "c", "a"); (key 2, "c", "b") ]));
  match Sync.scan engine client ~start_key:(key 1) ~end_key:(key 3) () with
  | Ok rows -> Alcotest.(check int) "two rows" 2 (List.length rows)
  | Error e -> Alcotest.failf "scan: %a" Sync.pp_error e

let test_sync_deadline () =
  let engine, cluster, client = boot () in
  let key = Partition.key_of_int (Cluster.partition cluster) 9 in
  (* Kill the whole cohort: the op cannot complete; the deadline fires. *)
  let range = Partition.route (Cluster.partition cluster) key in
  List.iter (Cluster.crash_node cluster) (Partition.cohort (Cluster.partition cluster) ~range);
  match Sync.put engine client ~deadline:(Sim.Sim_time.sec 2) key "c" ~value:"x" with
  | Error Sync.Deadline -> ()
  | Error (Sync.Client_error _) -> ()  (* retries may exhaust first; also fine *)
  | Ok () -> Alcotest.fail "write succeeded with the cohort down"

let suite =
  [
    Alcotest.test_case "sync: roundtrip" `Quick test_sync_roundtrip;
    Alcotest.test_case "sync: transaction + scan" `Quick test_sync_txn_and_scan;
    Alcotest.test_case "sync: deadline on dead cohort" `Quick test_sync_deadline;
  ]
