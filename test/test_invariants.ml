(* Protocol-level invariants checked under randomized schedules:

   - election safety: never two open leaders for one range;
   - the election rule picks the replica with the max last LSN (§7.2);
   - strong reads are monotonic in version numbers, across failovers;
   - a committed write is durable on a quorum: any majority of the cohort
     can reconstruct it. *)

open Spinnaker
module Lsn = Storage.Lsn

let check_bool = Alcotest.(check bool)

let test_config =
  {
    Config.default with
    Config.nodes = 5;
    disk = Sim.Disk_model.Ssd;
    commit_period = Sim.Sim_time.ms 200;
    session_timeout = Sim.Sim_time.ms 500;
  }

let boot ?(seed = 42) () =
  let engine = Sim.Engine.create ~seed () in
  let cluster = Cluster.create engine test_config in
  Cluster.start cluster;
  if not (Cluster.run_until_ready cluster) then Alcotest.fail "cluster not ready";
  (engine, cluster)

let await engine cell =
  let deadline = Sim.Sim_time.add (Sim.Engine.now engine) (Sim.Sim_time.sec 60) in
  let rec loop () =
    match !cell with
    | Some v -> v
    | None ->
      if Sim.Sim_time.(Sim.Engine.now engine >= deadline) then Alcotest.fail "await timeout"
      else begin
        Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
        loop ()
      end
  in
  loop ()

let open_leaders cluster ~range =
  List.filter
    (fun n ->
      Node.alive (Cluster.node cluster n)
      &&
      match Node.cohort (Cluster.node cluster n) ~range with
      | Some c -> Cohort.is_open c
      | None -> false)
    (Partition.cohort (Cluster.partition cluster) ~range)

(* Election safety sampled through a chaotic schedule of crashes/restarts. *)
let test_at_most_one_open_leader () =
  let engine, cluster = boot ~seed:13 () in
  let failure = Sim.Failure.create engine in
  Sim.Failure.chaos failure
    ~mean_time_to_failure:(Sim.Sim_time.sec 4)
    ~mean_time_to_repair:(Sim.Sim_time.sec 2)
    ~until:(Sim.Sim_time.at_us 30_000_000)
    (List.filteri (fun i _ -> i < 3) (Cluster.failure_targets cluster));
  let violations = ref 0 in
  for _ = 1 to 300 do
    Sim.Engine.run_for engine (Sim.Sim_time.ms 100);
    for range = 0 to Partition.ranges (Cluster.partition cluster) - 1 do
      if List.length (open_leaders cluster ~range) > 1 then incr violations
    done
  done;
  Alcotest.(check int) "never two open leaders for one range" 0 !violations

let test_election_picks_max_lst () =
  (* Hand-build unequal logs: node 1 of range 0's cohort has the longest log
     and must win even though node 0 is the range's primary. *)
  let engine = Sim.Engine.create ~seed:17 () in
  let config = { test_config with Config.nodes = 3 } in
  let cluster = Cluster.create engine config in
  let populate node upto =
    let wal = Node.wal (Cluster.node cluster node) in
    for seq = 1 to upto do
      Storage.Wal.append wal
        (Storage.Log_record.write ~cohort:0
           ~lsn:(Lsn.make ~epoch:1 ~seq)
           ~timestamp:seq
           (Storage.Log_record.Put
              {
                key = Partition.key_of_int (Cluster.partition cluster) seq;
                col = "c";
                value = "v";
                version = seq;
              }))
    done;
    Storage.Wal.append wal (Storage.Log_record.commit_upto ~cohort:0 (Lsn.make ~epoch:1 ~seq:1));
    Storage.Wal.force wal (fun () -> ())
  in
  populate 0 5;
  populate 1 9;
  populate 2 7;
  let zk = Cluster.zk_server cluster in
  let session = Coord.Zk_server.open_session zk in
  ignore (Coord.Zk_server.set_data zk ~session ~path:"/ranges/0/epoch" ~data:"1");
  Sim.Engine.run_for engine (Sim.Sim_time.ms 50);
  Cluster.start cluster;
  check_bool "ready" true (Cluster.run_until_ready cluster);
  (* The election decides once a MAJORITY has announced (Figure 7 line 5), so
     the winner is the max-lst node of some majority — never the shortest log
     (n0): any two candidates include one of n1/n2, whose logs dominate n0's. *)
  let leader = Option.get (Cluster.leader_of cluster ~range:0) in
  check_bool
    (Printf.sprintf "winner n%d holds a majority-maximal log" leader)
    true
    (leader = 1 || leader = 2);
  (* And the committed prefix (through 1.1) is never lost, whoever wins. *)
  (match Node.cohort (Cluster.node cluster leader) ~range:0 with
  | Some c ->
    check_bool "committed write 1.1 survives" true
      (Cohort.read_local c (Partition.key_of_int (Cluster.partition cluster) 1, "c") <> None);
    check_bool "leader committed at least the old commit point" true
      (Lsn.compare (Cohort.cmt c) (Lsn.make ~epoch:1 ~seq:1) >= 0)
  | None -> Alcotest.fail "cohort missing")

let test_strong_read_version_monotonic () =
  let engine, cluster = boot ~seed:19 () in
  let writer = Cluster.new_client cluster in
  let reader = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 42 in
  let range = Partition.route (Cluster.partition cluster) key in
  (* Continuous writes; a failover in the middle. *)
  let rec write_loop () =
    Client.put writer key "c" ~value:"x" (fun _ ->
        ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 30) write_loop))
  in
  write_loop ();
  ignore
    (Sim.Engine.schedule engine ~after:(Sim.Sim_time.sec 2) (fun () ->
         match Cluster.leader_of cluster ~range with
         | Some l -> Cluster.crash_node cluster l
         | None -> ()));
  let last_version = ref 0 in
  let regressions = ref 0 in
  for _ = 1 to 100 do
    let r = ref None in
    Client.get reader key "c" (fun x -> r := Some x);
    (match await engine r with
    | Ok Client.{ version; _ } ->
      if version < !last_version then incr regressions;
      last_version := Stdlib.max !last_version version
    | Error _ -> ());
    Sim.Engine.run_for engine (Sim.Sim_time.ms 60)
  done;
  Alcotest.(check int) "strong-read versions never regress" 0 !regressions;
  check_bool "writes actually happened" true (!last_version > 10)

let test_committed_write_on_quorum () =
  let engine, cluster = boot ~seed:23 () in
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 7 in
  let range = Partition.route (Cluster.partition cluster) key in
  let r = ref None in
  Client.put client key "c" ~value:"durable" (fun x -> r := Some x);
  check_bool "committed" true (Result.is_ok (await engine r));
  (* The write must be forced in the logs of at least a majority (§8.1). *)
  let members = Partition.cohort (Cluster.partition cluster) ~range in
  let holders =
    List.filter
      (fun n ->
        let wal = Node.wal (Cluster.node cluster n) in
        Lsn.compare (Storage.Wal.last_write_lsn wal ~cohort:range) Lsn.zero > 0)
      members
  in
  check_bool
    (Printf.sprintf "forced on %d/3 logs" (List.length holders))
    true
    (List.length holders >= Config.majority test_config)

let prop_random_failover_schedules_preserve_acked_writes =
  QCheck.Test.make ~name:"random failover schedules never lose acked writes" ~count:8
    (QCheck.int_range 1 1000)
    (fun seed ->
      let engine = Sim.Engine.create ~seed () in
      let cluster = Cluster.create engine test_config in
      Cluster.start cluster;
      if not (Cluster.run_until_ready cluster) then false
      else begin
        let client = Cluster.new_client cluster in
        let rng = Sim.Rng.create (seed * 7) in
        let acked : (string, string) Hashtbl.t = Hashtbl.create 32 in
        (* Random crash/restart of one random node mid-run. *)
        let victim = Sim.Rng.int rng test_config.Config.nodes in
        let at = 500_000 + Sim.Rng.int rng 2_000_000 in
        let failure = Sim.Failure.create engine in
        Sim.Failure.crash_for failure ~at:(Sim.Sim_time.at_us at)
          ~down_for:(Sim.Sim_time.ms (500 + Sim.Rng.int rng 2000))
          (Node.failure_target (Cluster.node cluster victim));
        let pending = ref 0 in
        for i = 0 to 19 do
          let key =
            Partition.key_of_int (Cluster.partition cluster)
              (Sim.Rng.int rng test_config.Config.key_space)
          in
          let value = Printf.sprintf "s%d-%d" seed i in
          incr pending;
          Client.put client key "c" ~value (fun result ->
              decr pending;
              if Result.is_ok result then Hashtbl.replace acked key value);
          Sim.Engine.run_for engine (Sim.Sim_time.ms (100 + Sim.Rng.int rng 200))
        done;
        Sim.Engine.run_for engine (Sim.Sim_time.sec 8);
        Hashtbl.fold
          (fun key value ok ->
            ok
            &&
            let r = ref None in
            Client.get client key "c" (fun x -> r := Some x);
            let rec drive n =
              match !r with
              | Some v -> v
              | None when n = 0 -> Error Client.Timed_out
              | None ->
                Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
                drive (n - 1)
            in
            match drive 2000 with
            | Ok Client.{ value = Some got; _ } -> String.equal got value
            | _ -> false)
          acked true
      end)

let suite =
  [
    Alcotest.test_case "election safety under chaos" `Slow test_at_most_one_open_leader;
    Alcotest.test_case "election picks max last-LSN" `Quick test_election_picks_max_lst;
    Alcotest.test_case "strong reads version-monotonic across failover" `Slow
      test_strong_read_version_monotonic;
    Alcotest.test_case "committed write forced on a quorum" `Quick test_committed_write_on_quorum;
    QCheck_alcotest.to_alcotest prop_random_failover_schedules_preserve_acked_writes;
  ]
