(* Linearizability of strong reads, checked from recorded operation
   histories — including through a leader failover. Also unit-tests the
   checker itself against hand-built violating histories. *)

open Spinnaker
module History = Workload.History

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let at_us = Sim.Sim_time.at_us

(* --- checker unit tests -------------------------------------------------- *)

let test_checker_accepts_clean_history () =
  let h = History.create () in
  History.record_write h ~key:"k" ~seq:1 ~invoked:(at_us 0) ~completed:(at_us 10) ~acked:true;
  History.record_read h ~key:"k" ~observed:(Some 1) ~invoked:(at_us 20) ~completed:(at_us 30);
  History.record_write h ~key:"k" ~seq:2 ~invoked:(at_us 40) ~completed:(at_us 50) ~acked:true;
  History.record_read h ~key:"k" ~observed:(Some 2) ~invoked:(at_us 60) ~completed:(at_us 70);
  check_int "clean" 0 (List.length (History.check h))

let test_checker_detects_phantom_value () =
  let h = History.create () in
  History.record_read h ~key:"k" ~observed:(Some 7) ~invoked:(at_us 0) ~completed:(at_us 5);
  check_bool "phantom flagged" true (History.check h <> [])

let test_checker_detects_time_travel () =
  let h = History.create () in
  History.record_write h ~key:"k" ~seq:1 ~invoked:(at_us 0) ~completed:(at_us 5) ~acked:true;
  History.record_write h ~key:"k" ~seq:2 ~invoked:(at_us 6) ~completed:(at_us 9) ~acked:true;
  History.record_read h ~key:"k" ~observed:(Some 2) ~invoked:(at_us 10) ~completed:(at_us 12);
  History.record_read h ~key:"k" ~observed:(Some 1) ~invoked:(at_us 20) ~completed:(at_us 22);
  check_bool "regression flagged" true (History.check h <> [])

let test_checker_detects_lost_ack () =
  let h = History.create () in
  History.record_write h ~key:"k" ~seq:3 ~invoked:(at_us 0) ~completed:(at_us 5) ~acked:true;
  History.record_read h ~key:"k" ~observed:None ~invoked:(at_us 10) ~completed:(at_us 12);
  check_bool "lost acked write flagged" true (History.check h <> [])

let test_checker_allows_concurrent_reads_to_disagree () =
  (* Two overlapping reads racing a write may see either value. *)
  let h = History.create () in
  History.record_write h ~key:"k" ~seq:1 ~invoked:(at_us 0) ~completed:(at_us 5) ~acked:true;
  History.record_write h ~key:"k" ~seq:2 ~invoked:(at_us 10) ~completed:(at_us 30) ~acked:true;
  History.record_read h ~key:"k" ~observed:(Some 2) ~invoked:(at_us 11) ~completed:(at_us 29);
  History.record_read h ~key:"k" ~observed:(Some 1) ~invoked:(at_us 12) ~completed:(at_us 29);
  check_int "overlapping reads may disagree" 0 (List.length (History.check h))

(* --- end-to-end: strong reads stay linearizable through failover ---------- *)

let test_strong_reads_linearizable_through_failover () =
  let engine = Sim.Engine.create ~seed:33 () in
  let config =
    {
      Config.default with
      Config.nodes = 5;
      disk = Sim.Disk_model.Ssd;
      session_timeout = Sim.Sim_time.ms 500;
      commit_period = Sim.Sim_time.ms 200;
    }
  in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  check_bool "ready" true (Cluster.run_until_ready cluster);
  let key = Partition.key_of_int (Cluster.partition cluster) 7 in
  let history = History.create () in
  (* One serial writer... *)
  let writer = Cluster.new_client cluster in
  let seq = ref 0 in
  let rec write_loop () =
    incr seq;
    let this = !seq in
    let invoked = Sim.Engine.now engine in
    Client.put writer key "c" ~value:(string_of_int this) (fun result ->
        History.record_write history ~key ~seq:this ~invoked
          ~completed:(Sim.Engine.now engine)
          ~acked:(Result.is_ok result);
        ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 40) write_loop))
  in
  write_loop ();
  (* ...three concurrent strong readers... *)
  let spawn_reader () =
    let client = Cluster.new_client cluster in
    let rec read_loop () =
      let invoked = Sim.Engine.now engine in
      Client.get client key "c" (fun result ->
          (match result with
          | Ok Client.{ value; _ } ->
            History.record_read history ~key
              ~observed:(Option.map int_of_string value)
              ~invoked
              ~completed:(Sim.Engine.now engine)
          | Error _ -> ());
          ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 15) read_loop))
    in
    read_loop ()
  in
  for _ = 1 to 3 do
    spawn_reader ()
  done;
  (* ...and a leader failover in the middle. *)
  ignore
    (Sim.Engine.schedule engine ~after:(Sim.Sim_time.sec 2) (fun () ->
         let range = Partition.route (Cluster.partition cluster) key in
         match Cluster.leader_of cluster ~range with
         | Some l -> Cluster.crash_node cluster l
         | None -> ()));
  Sim.Engine.run_for engine (Sim.Sim_time.sec 8);
  let violations = History.check history in
  List.iter (fun v -> Format.printf "violation: %a@." History.pp_violation v) violations;
  check_int "no linearizability violations" 0 (List.length violations);
  check_bool "history is substantial" true
    (History.reads history > 300 && History.writes history > 50)

let suite =
  [
    Alcotest.test_case "checker: clean history" `Quick test_checker_accepts_clean_history;
    Alcotest.test_case "checker: phantom value" `Quick test_checker_detects_phantom_value;
    Alcotest.test_case "checker: time travel" `Quick test_checker_detects_time_travel;
    Alcotest.test_case "checker: lost acked write" `Quick test_checker_detects_lost_ack;
    Alcotest.test_case "checker: concurrent reads may disagree" `Quick
      test_checker_allows_concurrent_reads_to_disagree;
    Alcotest.test_case "strong reads linearizable through failover" `Slow
      test_strong_reads_linearizable_through_failover;
  ]
