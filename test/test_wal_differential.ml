(* Differential test for the indexed WAL.

   Drives random schedules of append / force / run / crash / gc / wipe
   through both the real {!Storage.Wal} and a naive model that reimplements
   the original list-of-records semantics (newest-first durable and volatile
   lists, whole-log folds for every query). After every step the two must
   agree on the durable record sequence and on all marker / range queries —
   proving the per-cohort index is a pure representation change.

   Duplicate-LSN appends (leader retransmissions) use a payload derived from
   the LSN, so both representations reconstruct identical records. *)

module Lsn = Storage.Lsn
module Wal = Storage.Wal
module Log_record = Storage.Log_record

let cohorts = 3

let lsn seq = Lsn.make ~epoch:1 ~seq

(* Payload is a function of (cohort, seq): duplicate appends are identical. *)
let write_record ~cohort ~seq =
  Log_record.write ~cohort ~lsn:(lsn seq) ~timestamp:seq
    (Log_record.Put
       { key = Printf.sprintf "k%d-%d" cohort seq; col = "c"; value = "v"; version = seq })

type op =
  | Append_write of int * int  (** cohort, seq *)
  | Append_commit of int * int
  | Append_ckpt of int * int
  | Force
  | Run
  | Crash
  | Gc of int * int  (** cohort, upto seq *)
  | Wipe

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun c s -> Append_write (c, s)) (int_bound (cohorts - 1)) (int_range 1 8));
        (2, map2 (fun c s -> Append_commit (c, s)) (int_bound (cohorts - 1)) (int_range 1 8));
        (2, map2 (fun c s -> Append_ckpt (c, s)) (int_bound (cohorts - 1)) (int_range 1 8));
        (4, return Force);
        (4, return Run);
        (1, return Crash);
        (2, map2 (fun c s -> Gc (c, s)) (int_bound (cohorts - 1)) (int_range 0 9));
        (1, return Wipe);
      ])

let pp_op = function
  | Append_write (c, s) -> Printf.sprintf "write(%d,%d)" c s
  | Append_commit (c, s) -> Printf.sprintf "commit(%d,%d)" c s
  | Append_ckpt (c, s) -> Printf.sprintf "ckpt(%d,%d)" c s
  | Force -> "force"
  | Run -> "run"
  | Crash -> "crash"
  | Gc (c, s) -> Printf.sprintf "gc(%d,%d)" c s
  | Wipe -> "wipe"

let schedule_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

(* --- the model: original list-based WAL semantics ------------------------ *)

type model = {
  mutable durable : Log_record.t list;  (** newest first *)
  mutable volatile : Log_record.t list;  (** newest first *)
  mutable appended_abs : int;  (** absolute index of last appended record *)
  mutable durable_abs : int;  (** absolute index of last durable record *)
  mutable target : int;  (** largest outstanding force target (absolute) *)
  mutable in_flight : int option;  (** size of the batch under the device force, if any *)
}

let max_batch = 4

let m_promote m n =
  let rev = List.rev m.volatile in
  let rec take i acc rest =
    if i = n then (acc, rest)
    else match rest with [] -> (acc, []) | r :: tl -> take (i + 1) (r :: acc) tl
  in
  let moved, remaining = take 0 [] rev in
  m.durable <- moved @ m.durable;
  m.volatile <- List.rev remaining

(* Batch sizes are fixed when the device force is issued — synchronously at
   the force call, or at a previous batch's completion — so records appended
   while a force is in flight wait for the next batch. *)
let m_kick m =
  if m.target > m.durable_abs && m.in_flight = None then
    m.in_flight <- Some (Stdlib.min max_batch (List.length m.volatile))

(* Quiescence: complete in-flight batches (promoting each batch's records)
   and re-issue until every outstanding force target is durable. *)
let m_run m =
  let continue = ref true in
  while !continue do
    match m.in_flight with
    | None -> continue := false
    | Some n ->
      m_promote m n;
      m.durable_abs <- m.durable_abs + n;
      m.in_flight <- None;
      m_kick m
  done

let m_fold m ~cohort ~init f =
  List.fold_left
    (fun acc (r : Log_record.t) -> if r.cohort = cohort then f acc r.entry else acc)
    init m.durable

let m_last_write m ~cohort =
  m_fold m ~cohort ~init:Lsn.zero (fun acc -> function
    | Log_record.Write { lsn; _ } -> Lsn.max acc lsn
    | _ -> acc)

let m_last_commit m ~cohort =
  m_fold m ~cohort ~init:Lsn.zero (fun acc -> function
    | Log_record.Commit_upto lsn -> Lsn.max acc lsn
    | _ -> acc)

let m_last_ckpt m ~cohort =
  m_fold m ~cohort ~init:Lsn.zero (fun acc -> function
    | Log_record.Checkpoint lsn -> Lsn.max acc lsn
    | _ -> acc)

let m_min_write m ~cohort =
  m_fold m ~cohort ~init:None (fun acc -> function
    | Log_record.Write { lsn; _ } -> Some (match acc with None -> lsn | Some x -> Lsn.min x lsn)
    | _ -> acc)

let m_writes_in m ~cohort ~above ~upto =
  m_fold m ~cohort ~init:[] (fun acc -> function
    | Log_record.Write { lsn; op; timestamp; origin } when Lsn.(lsn > above) && Lsn.(lsn <= upto)
      ->
      (lsn, op, timestamp, origin) :: acc
    | _ -> acc)
  |> List.sort_uniq (fun (a, _, _, _) (b, _, _, _) -> Lsn.compare a b)

let m_gc m ~cohort ~upto =
  let last_commit = m_last_commit m ~cohort and last_ckpt = m_last_ckpt m ~cohort in
  let keep (r : Log_record.t) =
    if r.cohort <> cohort then true
    else
      match r.entry with
      | Log_record.Write { lsn; _ } -> Lsn.(lsn > upto)
      | Log_record.Commit_upto lsn -> Lsn.equal lsn last_commit
      | Log_record.Checkpoint lsn -> Lsn.equal lsn last_ckpt
  in
  let seen_commit = ref false and seen_ckpt = ref false in
  let keep_once (r : Log_record.t) =
    if r.cohort <> cohort then true
    else
      match r.entry with
      | Log_record.Commit_upto _ ->
        if !seen_commit then false else (seen_commit := true; true)
      | Log_record.Checkpoint _ -> if !seen_ckpt then false else (seen_ckpt := true; true)
      | Log_record.Write _ -> true
  in
  m.durable <- List.filter (fun r -> keep r && keep_once r) m.durable

(* --- the differential property ------------------------------------------- *)

let check_agreement ~step ~op wal m =
  let fail fmt = QCheck.Test.fail_reportf ("step %d (%s): " ^^ fmt) step (pp_op op) in
  if Wal.durable_records wal <> List.rev m.durable then fail "durable_records diverge";
  if Wal.durable_count wal <> List.length m.durable then fail "durable_count diverges";
  for cohort = 0 to cohorts - 1 do
    if not (Lsn.equal (Wal.last_write_lsn wal ~cohort) (m_last_write m ~cohort)) then
      fail "last_write_lsn diverges for cohort %d" cohort;
    if not (Lsn.equal (Wal.last_commit_marker wal ~cohort) (m_last_commit m ~cohort)) then
      fail "last_commit_marker diverges for cohort %d" cohort;
    if not (Lsn.equal (Wal.last_checkpoint wal ~cohort) (m_last_ckpt m ~cohort)) then
      fail "last_checkpoint diverges for cohort %d" cohort;
    if Wal.min_available_write_lsn wal ~cohort <> m_min_write m ~cohort then
      fail "min_available_write_lsn diverges for cohort %d" cohort;
    List.iter
      (fun (above, upto) ->
        if
          Wal.durable_writes_in wal ~cohort ~above:(lsn above) ~upto:(lsn upto)
          <> m_writes_in m ~cohort ~above:(lsn above) ~upto:(lsn upto)
        then fail "durable_writes_in (%d,%d] diverges for cohort %d" above upto cohort)
      [ (0, 9); (2, 6); (4, 4) ]
  done;
  true

let prop_differential =
  QCheck.Test.make ~name:"wal: indexed log = list-of-records model (differential)" ~count:300
    schedule_arb
    (fun ops ->
      let engine = Sim.Engine.create () in
      let resource = Sim.Resource.create engine ~name:"d" () in
      let model = Sim.Disk_model.create Sim.Disk_model.Ssd in
      let wal =
        Wal.create engine ~disk:resource ~model ~rng:(Sim.Rng.create 7) ~max_batch ()
      in
      let m =
        {
          durable = [];
          volatile = [];
          appended_abs = 0;
          durable_abs = 0;
          target = 0;
          in_flight = None;
        }
      in
      let m_append r =
        m.volatile <- r :: m.volatile;
        m.appended_abs <- m.appended_abs + 1
      in
      List.for_all
        (fun (step, op) ->
          (match op with
          | Append_write (cohort, seq) ->
            let r = write_record ~cohort ~seq in
            Wal.append wal r;
            m_append r
          | Append_commit (cohort, seq) ->
            let r = Log_record.commit_upto ~cohort (lsn seq) in
            Wal.append wal r;
            m_append r
          | Append_ckpt (cohort, seq) ->
            let r = Log_record.checkpoint ~cohort (lsn seq) in
            Wal.append wal r;
            m_append r
          | Force ->
            Wal.force wal (fun () -> ());
            m.target <- Stdlib.max m.target m.appended_abs;
            m_kick m
          | Run ->
            Sim.Engine.run engine;
            m_run m
          | Crash ->
            Wal.crash wal;
            m.volatile <- [];
            m.appended_abs <- m.durable_abs;
            m.target <- m.durable_abs;
            m.in_flight <- None
          | Gc (cohort, upto) ->
            Wal.gc_cohort wal ~cohort ~upto:(lsn upto);
            m_gc m ~cohort ~upto:(lsn upto)
          | Wipe ->
            Wal.wipe wal;
            m.durable <- [];
            m.volatile <- [];
            m.appended_abs <- m.durable_abs;
            m.target <- m.durable_abs;
            m.in_flight <- None);
          check_agreement ~step ~op wal m)
        (List.mapi (fun i op -> (i, op)) ops))

let suite = [ QCheck_alcotest.to_alcotest prop_differential ]
