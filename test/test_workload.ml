(* Tests for the workload harness: generators, drivers, and the closed-loop
   experiment runner. *)

open Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gen mode =
  Generator.create ~rng:(Sim.Rng.create 5) ~key_space:100_000 ~mode ~thread:0

let test_uniform_keys_in_space () =
  let g = gen Generator.Uniform_random in
  for _ = 1 to 200 do
    let k = Generator.next_key g in
    let v = int_of_string k in
    check_bool "in space" true (v >= 0 && v < 100_000)
  done

let test_consecutive_keys_stride () =
  let g = gen (Generator.Consecutive { stride = 7 }) in
  let k1 = int_of_string (Generator.next_key g) in
  let k2 = int_of_string (Generator.next_key g) in
  let k3 = int_of_string (Generator.next_key g) in
  check_int "stride" 7 ((k2 - k1 + 100_000) mod 100_000);
  check_int "stride again" 7 ((k3 - k2 + 100_000) mod 100_000)

let test_hotspot_skew () =
  (* Hot set = 10 keys strided across the 100k space: {0, 10_000, ...}. *)
  let g = gen (Generator.Hotspot { fraction_hot = 0.9; hot_keys = 10 }) in
  let hot = ref 0 in
  for _ = 1 to 1000 do
    let k = int_of_string (Generator.next_key g) in
    if k mod 10_000 = 0 then incr hot
  done;
  check_bool (Printf.sprintf "hot fraction %d/1000" !hot) true (!hot > 800)

let test_value_size_and_caching () =
  check_int "4KB" 4096 (String.length (Generator.value ~size:4096));
  check_bool "cached" true (Generator.value ~size:64 == Generator.value ~size:64)

let test_experiment_end_to_end () =
  let config =
    {
      Spinnaker.Config.default with
      Spinnaker.Config.nodes = 5;
      disk = Sim.Disk_model.Ssd;
    }
  in
  let engine = Sim.Engine.create () in
  let cluster = Spinnaker.Cluster.create engine config in
  Spinnaker.Cluster.start cluster;
  check_bool "ready" true (Spinnaker.Cluster.run_until_ready cluster);
  let spec =
    {
      Experiment.default_spec with
      Experiment.threads = 4;
      write_fraction = 0.5;
      warmup = Sim.Sim_time.ms 500;
      measure = Sim.Sim_time.sec 2;
    }
  in
  let o =
    Experiment.run ~engine ~key_space:100_000
      ~make_driver:(fun () -> Driver.spinnaker cluster ~consistent_reads:true ())
      spec
  in
  check_bool "completed ops" true (o.Experiment.all.Sim.Metrics.completed > 50);
  check_bool "has reads" true (o.Experiment.reads.Sim.Metrics.completed > 0);
  check_bool "has writes" true (o.Experiment.writes.Sim.Metrics.completed > 0);
  check_int "no errors" 0 o.Experiment.all.Sim.Metrics.errors;
  check_bool "latencies measured" true
    (o.Experiment.writes.Sim.Metrics.mean_latency_ms > 0.0
    && o.Experiment.reads.Sim.Metrics.mean_latency_ms > 0.0);
  (* The cohorts recorded a per-phase breakdown for the writes they led. *)
  let phases = Spinnaker.Cluster.write_phases cluster in
  let count hist = Sim.Metrics.Histogram.count hist in
  check_bool "phase samples collected" true (Sim.Metrics.Write_phases.count phases > 0);
  check_int "queue and replication counts agree"
    (count phases.Sim.Metrics.Write_phases.queue)
    (count phases.Sim.Metrics.Write_phases.replication);
  check_bool "force phase has samples" true
    (count phases.Sim.Metrics.Write_phases.force > 0);
  (* JSON emission is well-formed and carries every phase. *)
  let js = Sim.Json.to_string (Sim.Metrics.Write_phases.to_json phases) in
  List.iter
    (fun field ->
      check_bool (field ^ " in json") true
        (String.length js > 0
        &&
        let re = "\"" ^ field ^ "\"" in
        let rec find i =
          i + String.length re <= String.length js
          && (String.sub js i (String.length re) = re || find (i + 1))
        in
        find 0))
    [ "queue"; "force"; "replication"; "apply"; "p99_us" ]

let test_sweep_increases_load () =
  let config =
    {
      Spinnaker.Config.default with
      Spinnaker.Config.nodes = 5;
      disk = Sim.Disk_model.Ssd;
    }
  in
  let engine = Sim.Engine.create () in
  let cluster = Eventual.Cas_cluster.create engine config in
  Eventual.Cas_cluster.start cluster;
  let spec =
    {
      Experiment.default_spec with
      Experiment.write_fraction = 0.0;
      warmup = Sim.Sim_time.ms 300;
      measure = Sim.Sim_time.sec 1;
    }
  in
  let points =
    Experiment.sweep ~engine
      ~key_space:100_000
      ~make_driver:(fun () ->
        Driver.cassandra cluster ~read_level:Eventual.Cas_message.One
          ~write_level:Eventual.Cas_message.One ())
      ~thread_counts:[ 1; 8 ] spec
  in
  match points with
  | [ p1; p8 ] ->
    check_bool "more threads, more throughput" true
      (p8.Experiment.outcome.Experiment.all.Sim.Metrics.throughput_per_sec
      > p1.Experiment.outcome.Experiment.all.Sim.Metrics.throughput_per_sec *. 2.0)
  | _ -> Alcotest.fail "sweep shape"

let suite =
  [
    Alcotest.test_case "generator: uniform keys" `Quick test_uniform_keys_in_space;
    Alcotest.test_case "generator: consecutive stride" `Quick test_consecutive_keys_stride;
    Alcotest.test_case "generator: hotspot skew" `Quick test_hotspot_skew;
    Alcotest.test_case "generator: value cache" `Quick test_value_size_and_caching;
    Alcotest.test_case "experiment: end-to-end mixed run" `Slow test_experiment_end_to_end;
    Alcotest.test_case "experiment: sweep scales load" `Slow test_sweep_increases_load;
  ]
