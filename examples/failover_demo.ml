(* Failover demo: watch a cohort lose its leader and recover (§6, §7).

     dune exec examples/failover_demo.exe

   A writer keeps updating one key range. We kill the range's leader
   mid-stream: Zookeeper expires its session, the survivors elect the
   replica with the max last-LSN, the new leader re-proposes the unresolved
   writes (Figure 6) and re-opens the cohort. The demo prints the protocol
   trace and measures the availability gap the client observed. *)

open Spinnaker

let () =
  let engine = Sim.Engine.create ~seed:5 () in
  let config =
    {
      Config.default with
      Config.nodes = 5;
      disk = Sim.Disk_model.Ssd;
      session_timeout = Sim.Sim_time.sec 2;
      commit_period = Sim.Sim_time.sec 1;
    }
  in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  assert (Cluster.run_until_ready cluster);
  let client = Cluster.new_client cluster in
  let width = config.Config.key_space / config.Config.nodes in
  let cursor = ref 0 in
  let gap_start = ref None in
  let max_gap = ref Sim.Sim_time.span_zero in
  let last_ok = ref (Sim.Engine.now engine) in
  let writes_ok = ref 0 in
  (* Closed-loop writer pinned to range 0's keys. *)
  let rec writer () =
    let key = Partition.key_of_int (Cluster.partition cluster) (!cursor mod width) in
    incr cursor;
    Client.put client key "c" ~value:"x" (fun result ->
        (match result with
        | Ok () ->
          incr writes_ok;
          let now = Sim.Engine.now engine in
          let gap = Sim.Sim_time.diff now !last_ok in
          if Sim.Sim_time.span_compare gap !max_gap > 0 then max_gap := gap;
          last_ok := now;
          (match !gap_start with
          | Some t ->
            Format.printf "  [%a] first write after failover (+%.2f s)@." Sim.Sim_time.pp now
              (Sim.Sim_time.to_sec_f (Sim.Sim_time.diff now t));
            gap_start := None
          | None -> ())
        | Error _ -> ());
        writer ())
  in
  writer ();
  Sim.Engine.run_for engine (Sim.Sim_time.sec 3);

  let leader = Option.get (Cluster.leader_of cluster ~range:0) in
  Format.printf "[%a] killing node %d, the leader of range 0 (%d writes so far)@."
    Sim.Sim_time.pp (Sim.Engine.now engine) leader !writes_ok;
  gap_start := Some (Sim.Engine.now engine);
  Cluster.crash_node cluster leader;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 8);

  Format.printf "[%a] restarting node %d; it rejoins as a follower and catches up@."
    Sim.Sim_time.pp (Sim.Engine.now engine) leader;
  Cluster.restart_node cluster leader;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 5);

  Format.printf "@.protocol trace for range 0:@.";
  List.iter
    (fun e ->
      if
        String.length e.Sim.Trace.detail >= 2
        && String.sub e.Sim.Trace.detail 0 2 = "r0"
        && not (String.equal e.Sim.Trace.tag "catchup_serve")
      then
        Format.printf "  [%a] %-18s %s@." Sim.Sim_time.pp e.Sim.Trace.at e.Sim.Trace.tag
          e.Sim.Trace.detail)
    (Sim.Trace.events (Cluster.trace cluster));
  Format.printf "@.%d writes committed; longest client-visible write gap: %.2f s@." !writes_ok
    (Sim.Sim_time.to_sec_f !max_gap);
  Format.printf
    "(the gap = ~2 s failure detection + leader election + takeover, cf. Table 1)@."
