(* Timeline vs strong consistency (§3, §5).

     dune exec examples/timeline_vs_strong.exe

   A writer updates a key every 50 ms with the current simulated time.
   Two readers poll it: one with strong reads (always the leader, always
   fresh) and one with timeline reads (any replica, possibly stale by up to
   the commit period). The demo reports observed staleness for both, under
   two commit periods, showing exactly the freshness/performance dial the
   paper describes. *)

open Spinnaker

let run_with_commit_period period_ms =
  let engine = Sim.Engine.create ~seed:9 () in
  let config =
    {
      Config.default with
      Config.nodes = 5;
      disk = Sim.Disk_model.Ssd;
      commit_period = Sim.Sim_time.ms period_ms;
    }
  in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  assert (Cluster.run_until_ready cluster);
  let key = Partition.key_of_int (Cluster.partition cluster) 99 in
  let writer = Cluster.new_client cluster in
  let rec write_loop () =
    let stamp = string_of_int (Sim.Sim_time.time_to_us (Sim.Engine.now engine)) in
    Client.put writer key "t" ~value:stamp (fun _ ->
        ignore (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 50) write_loop))
  in
  write_loop ();
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);

  let strong_ages = Sim.Metrics.Histogram.create ~name:"strong" () in
  let timeline_ages = Sim.Metrics.Histogram.create ~name:"timeline" () in
  let reader ~consistent hist =
    let client = Cluster.new_client cluster in
    let rec loop n =
      if n > 0 then
        Client.get client ~consistent key "t" (fun result ->
            (match result with
            | Ok Client.{ value = Some v; _ } ->
              let age = Sim.Sim_time.time_to_us (Sim.Engine.now engine) - int_of_string v in
              Sim.Metrics.Histogram.record hist (float_of_int age)
            | _ -> ());
            ignore
              (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 25) (fun () -> loop (n - 1))))
    in
    loop 200
  in
  reader ~consistent:true strong_ages;
  reader ~consistent:false timeline_ages;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 10);
  Format.printf
    "  commit period %4d ms | strong reads: mean age %6.1f ms | timeline reads: mean age %6.1f \
     ms (p99 %6.1f ms)@."
    period_ms
    (Sim.Metrics.Histogram.mean strong_ages /. 1e3)
    (Sim.Metrics.Histogram.mean timeline_ages /. 1e3)
    (Sim.Metrics.Histogram.percentile timeline_ages 0.99 /. 1e3)

let () =
  Format.printf "staleness observed by readers (writer updates every 50 ms):@.";
  run_with_commit_period 200;
  run_with_commit_period 1000;
  Format.printf
    "strong reads always reflect the last committed write; timeline staleness@.\
     tracks the commit period — decrease it (or piggy-back commits) for@.\
     fresher followers at slightly higher message cost (§5, §D.1).@."
