(* The Figure 1 pitfall: why 2-way master-slave replication is not enough,
   and how a Paxos cohort rides out the same failure sequence (§1.1).

     dune exec examples/master_slave_pitfall.exe *)

open Masterslave

let drive engine cell =
  let rec wait () =
    match !cell with
    | Some v -> v
    | None ->
      Sim.Engine.run_for engine (Sim.Sim_time.ms 5);
      wait ()
  in
  wait ()

let () =
  Format.printf "--- master-slave pair (Figure 1) ---@.";
  let engine = Sim.Engine.create () in
  let pair = Ms_pair.create engine ~disk:Sim.Disk_model.Ssd () in
  let put key =
    let r = ref None in
    Ms_pair.put pair ~key ~value:"v" (fun x -> r := Some x);
    drive engine r
  in
  for i = 1 to 10 do
    ignore (put (Printf.sprintf "k%d" i))
  done;
  Format.printf "(a) both nodes at LSN=%d@." (Ms_pair.committed_lsn pair Ms_pair.Master);
  Ms_pair.crash pair Ms_pair.Slave;
  Format.printf "(b) slave crashes; master keeps serving@.";
  for i = 11 to 20 do
    ignore (put (Printf.sprintf "k%d" i))
  done;
  Format.printf "(c) master reaches LSN=%d alone, then crashes@."
    (Ms_pair.committed_lsn pair Ms_pair.Master);
  Ms_pair.crash pair Ms_pair.Master;
  Ms_pair.restart pair Ms_pair.Slave;
  Format.printf "(d) slave restarts at LSN=%d but the last committed LSN is %d:@."
    (Ms_pair.committed_lsn pair Ms_pair.Slave)
    (Ms_pair.writes_committed pair);
  Format.printf "    available for writes? %b  (one node up, yet the store is DOWN)@."
    (Ms_pair.available_for_writes pair);
  Ms_pair.destroy pair Ms_pair.Master;
  Format.printf "    master's disk dies for good -> %d committed writes are gone forever@."
    (Ms_pair.lost_writes pair);

  Format.printf "@.--- the same sequence against a Spinnaker cohort ---@.";
  let open Spinnaker in
  let engine = Sim.Engine.create () in
  let config =
    {
      Config.default with
      Config.nodes = 3;
      disk = Sim.Disk_model.Ssd;
      session_timeout = Sim.Sim_time.ms 500;
      commit_period = Sim.Sim_time.ms 200;
    }
  in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  assert (Cluster.run_until_ready cluster);
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 1 in
  let put v =
    let r = ref None in
    Client.put client key "c" ~value:v (fun x -> r := Some x);
    drive engine r
  in
  let members =
    Partition.cohort (Cluster.partition cluster)
      ~range:(Partition.route (Cluster.partition cluster) key)
  in
  let replica_b = List.nth members 1 and replica_a = List.nth members 0 in
  ignore (put "ten");
  Format.printf "(a) write committed on a quorum of 3 replicas@.";
  Cluster.crash_node cluster replica_b;
  Format.printf "(b) one replica crashes; majority remains -> write: %s@."
    (match put "twenty" with Ok () -> "ok" | Error _ -> "FAILED");
  Cluster.restart_node cluster replica_b;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 3);
  Cluster.crash_node cluster replica_a;
  Format.printf
    "(c,d) it recovers via catch-up; a DIFFERENT replica (the leader) crashes@.";
  Format.printf "      write after automatic failover: %s@."
    (match put "thirty" with Ok () -> "ok" | Error _ -> "FAILED");
  let r = ref None in
  Client.get client key "c" (fun x -> r := Some x);
  (match drive engine r with
  | Ok Client.{ value; _ } ->
    Format.printf "      strong read -> %s (nothing lost, never unavailable)@."
      (Option.value ~default:"<absent>" value)
  | Error _ -> Format.printf "      read failed@.");
  Format.printf
    "@.with 2F+1 = 3 replicas and quorum commit, any F = 1 failure sequence is@.\
     survivable — the guarantee master-slave pairs cannot give (§1.1, §8.1).@."
