(* Range scans over a time-series table.

     dune exec examples/time_series.exe

   Key-range partitioning (§4) keeps lexicographically adjacent rows on the
   same cohort, so windowed scans touch only the few cohorts covering the
   window — the access pattern Bigtable/PNUTS-style datastores are built
   for. Sensors log readings under zero-padded timestamp keys; dashboards
   scan windows of them. The scan API stitches windows that straddle range
   boundaries and offers the same strong/timeline consistency choice as
   point reads. *)

open Spinnaker

let () =
  let engine = Sim.Engine.create ~seed:8 () in
  let config = { Config.default with Config.nodes = 5; disk = Sim.Disk_model.Ssd } in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  assert (Cluster.run_until_ready cluster);
  let client = Cluster.new_client cluster in
  let key_of_tick = Partition.key_of_int (Cluster.partition cluster) in

  (* Ingest: one reading per "tick"; the key space is the timeline. The
     window 19 990..20 010 deliberately straddles the boundary between the
     first and second key ranges (width 20 000 with 5 nodes). *)
  let pending = ref 0 in
  for tick = 19_980 to 20_020 do
    incr pending;
    Client.multi_put client (key_of_tick tick)
      [ ("temperature", string_of_int (20 + (tick mod 7))); ("sensor", "s-42") ]
      (fun _ -> decr pending)
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 2);
  assert (!pending = 0);
  Format.printf "ingested 41 readings around the range boundary at tick 20000@.";

  (* Dashboard query: strong scan of a window spanning two cohorts. *)
  let print_window ~consistent ~lo ~hi =
    let results = ref None in
    Client.scan client ~consistent ~start_key:(key_of_tick lo) ~end_key:(key_of_tick hi)
      (fun r -> results := Some r);
    let rec drive () =
      match !results with
      | Some r -> r
      | None ->
        Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
        drive ()
    in
    match drive () with
    | Ok rows ->
      Format.printf "%s scan [%d, %d): %d rows@."
        (if consistent then "strong" else "timeline")
        lo hi (List.length rows);
      List.iteri
        (fun i (key, cols) ->
          if i < 3 || i >= List.length rows - 1 then
            Format.printf "    %s -> %s@." key
              (String.concat ", "
                 (List.map
                    (fun (c, Client.{ value; _ }) ->
                      Printf.sprintf "%s=%s" c (Option.value ~default:"-" value))
                    cols))
          else if i = 3 then Format.printf "    ...@.")
        rows
    | Error e -> Format.printf "scan failed: %a@." Client.pp_error e
  in
  print_window ~consistent:true ~lo:19_995 ~hi:20_006;

  (* The same window with timeline consistency: served by whichever replica
     of each cohort is cheapest, possibly slightly stale. *)
  Sim.Engine.run_for engine Config.default.Config.commit_period;
  print_window ~consistent:false ~lo:19_995 ~hi:20_006;

  (* Retention: delete a prefix, scan confirms it is gone. *)
  let deleted = ref 0 in
  for tick = 19_980 to 19_989 do
    Client.delete client (key_of_tick tick) "temperature" (fun _ -> incr deleted);
    Client.delete client (key_of_tick tick) "sensor" (fun _ -> ())
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 1);
  print_window ~consistent:true ~lo:19_980 ~hi:19_995;
  Format.printf "retention pass removed the first 10 ticks@."
