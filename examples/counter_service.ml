(* Counter service: the paper's §3 idiom for read-modify-write transactions.

     dune exec examples/counter_service.exe

   Spinnaker's version numbers plus conditional put give optimistic
   concurrency control: to increment a counter you read its value and
   version, then conditionally put value+1 expecting that version; a
   concurrent winner makes the put fail and you retry. Here 20 simulated
   workers hammer one counter — every increment lands exactly once. *)

open Spinnaker

let () =
  let engine = Sim.Engine.create ~seed:3 () in
  let config = { Config.default with Config.disk = Sim.Disk_model.Ssd } in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  assert (Cluster.run_until_ready cluster);
  let key = Partition.key_of_int (Cluster.partition cluster) 777 in
  let conflicts = ref 0 in
  let completed = ref 0 in
  let workers = 20 and increments_each = 10 in

  (* Initialise the counter. *)
  let init = Cluster.new_client cluster in
  Client.put init key "count" ~value:"0" (fun _ -> ());
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);

  (* Each worker: get -> conditional_put(value+1, expected=version) -> retry
     on Version_mismatch. Exactly the code sketch from §3. *)
  let spawn_worker _ =
    let client = Cluster.new_client cluster in
    let remaining = ref increments_each in
    let rec increment () =
      if !remaining > 0 then
        Client.get client key "count" (function
          | Error _ -> increment ()
          | Ok { value; version } ->
            let current = int_of_string (Option.value ~default:"0" value) in
            Client.conditional_put client key "count"
              ~value:(string_of_int (current + 1))
              ~expected:version
              (function
                | Ok () ->
                  decr remaining;
                  incr completed;
                  increment ()
                | Error (Client.Version_mismatch _) ->
                  (* Someone else won the race: retry with a fresh read. *)
                  incr conflicts;
                  increment ()
                | Error (Client.Timed_out | Client.Cross_range | Client.Conflict) -> increment ()))
    in
    increment ()
  in
  for w = 1 to workers do
    spawn_worker w
  done;
  Sim.Engine.run_for engine (Sim.Sim_time.sec 120);

  let final = Cluster.new_client cluster in
  Client.get final key "count" (fun result ->
      match result with
      | Ok { value; version } ->
        Format.printf
          "final counter = %s (version %d): %d workers x %d increments, %d completed, %d \
           optimistic-concurrency conflicts retried@."
          (Option.value ~default:"?" value)
          version workers increments_each !completed !conflicts;
        assert (value = Some (string_of_int (workers * increments_each)))
      | Error e -> Format.printf "final read failed: %a@." Client.pp_error e);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);
  Format.printf "every increment applied exactly once despite contention@."
