(* Quickstart: boot a simulated Spinnaker cluster, write and read a row.

     dune exec examples/quickstart.exe

   Everything runs on a deterministic discrete-event simulation: `Sim.Engine`
   is the virtual clock, `Cluster.create` wires nodes + Zookeeper + network,
   and `Client` is the transactional get-put API of the paper's §3. *)

open Spinnaker

let () =
  (* 1. A 10-node cluster with the paper's defaults (3-way replication,
     range partitioning, magnetic logging disks, 1 s commit period). *)
  let engine = Sim.Engine.create ~seed:1 () in
  let cluster = Cluster.create engine Config.default in
  Cluster.start cluster;
  assert (Cluster.run_until_ready cluster);
  Format.printf "cluster of %d nodes ready; range 0 led by node %d@."
    Config.default.Config.nodes
    (Option.get (Cluster.leader_of cluster ~range:0));

  (* 2. A client handle. All calls are asynchronous; the callback fires when
     the operation commits. Driving the engine delivers the events. *)
  let client = Cluster.new_client cluster in
  let key = Partition.key_of_int (Cluster.partition cluster) 4242 in

  Client.put client key "name" ~value:"spinnaker" (fun result ->
      match result with
      | Ok () -> Format.printf "put committed (durable on a quorum of the cohort)@."
      | Error e -> Format.printf "put failed: %a@." Client.pp_error e);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);

  (* 3. Strong read: always routed to the cohort leader, sees the latest
     committed value and its version number. *)
  Client.get client key "name" (fun result ->
      match result with
      | Ok { value; version } ->
        Format.printf "strong read -> %s (version %d)@."
          (Option.value ~default:"<absent>" value)
          version
      | Error e -> Format.printf "read failed: %a@." Client.pp_error e);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);

  (* 4. Timeline read: served by any replica; may briefly return a stale
     value (bounded by the commit period) in exchange for load spreading.
     Wait out one commit period so every replica has applied the write. *)
  Sim.Engine.run_for engine Config.default.Config.commit_period;
  Client.get client ~consistent:false key "name" (fun result ->
      match result with
      | Ok { value; _ } ->
        Format.printf "timeline read -> %s@." (Option.value ~default:"<absent>" value)
      | Error e -> Format.printf "read failed: %a@." Client.pp_error e);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);

  (* 5. Multi-column single-operation transaction on one row. *)
  Client.multi_put client key [ ("city", "almaden"); ("year", "2011") ] (fun result ->
      Format.printf "multi-column put -> %s@."
        (match result with Ok () -> "ok" | Error _ -> "failed"));
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);
  Client.multi_get client key [ "name"; "city"; "year" ] (fun result ->
      match result with
      | Ok cols ->
        List.iter
          (fun (col, Client.{ value; version }) ->
            Format.printf "  %-5s = %-10s (v%d)@." col
              (Option.value ~default:"<absent>" value)
              version)
          cols
      | Error e -> Format.printf "multi_get failed: %a@." Client.pp_error e);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 200);
  Format.printf "done at simulated time %a@." Sim.Sim_time.pp (Sim.Engine.now engine)
