(* Multi-operation transactions (§8.2): atomic transfers between accounts.

     dune exec examples/bank_transfer.exe

   The paper sketches multi-operation transactions as future work: batch a
   transaction's log records and invoke the replication protocol once at
   commit. This reproduction implements that for transactions scoped to one
   key range — the batch rides in a single log record, so it is exactly as
   durable, replicated, and recoverable as any single write: all-or-nothing
   even across leader failures.

   Here: accounts live in one range; transfers debit one and credit another
   atomically while a leader crash hits mid-stream. The invariant audited at
   the end — total balance is conserved — would be violated by any partially
   applied transfer. *)

open Spinnaker

let accounts = 8
let initial_balance = 1000

let () =
  let engine = Sim.Engine.create ~seed:31 () in
  let config =
    {
      Config.default with
      Config.nodes = 5;
      disk = Sim.Disk_model.Ssd;
      session_timeout = Sim.Sim_time.ms 500;
      commit_period = Sim.Sim_time.ms 200;
    }
  in
  let cluster = Cluster.create engine config in
  Cluster.start cluster;
  assert (Cluster.run_until_ready cluster);
  let client = Cluster.new_client cluster in
  let account i = Partition.key_of_int (Cluster.partition cluster) (100 + i) in

  (* Seed the accounts in one transaction. *)
  let seeded = ref false in
  Client.transact_put client
    (List.init accounts (fun i -> (account i, "balance", string_of_int initial_balance)))
    (fun r -> seeded := Result.is_ok r);
  Sim.Engine.run_for engine (Sim.Sim_time.ms 300);
  assert !seeded;
  Format.printf "%d accounts opened with %d each (one atomic transaction)@." accounts
    initial_balance;

  (* Random transfers, each a 2-row transaction; balances tracked locally so
     we know what the ledger must sum to. *)
  let rng = Sim.Rng.create 99 in
  let balances = Array.make accounts initial_balance in
  let transfers_done = ref 0 in
  let rec transfer n =
    if n > 0 then begin
      let src = Sim.Rng.int rng accounts in
      let dst = (src + 1 + Sim.Rng.int rng (accounts - 1)) mod accounts in
      let amount = 1 + Sim.Rng.int rng 50 in
      let src_after = balances.(src) - amount and dst_after = balances.(dst) + amount in
      Client.transact_put client
        [
          (account src, "balance", string_of_int src_after);
          (account dst, "balance", string_of_int dst_after);
        ]
        (fun r ->
          (match r with
          | Ok () ->
            balances.(src) <- src_after;
            balances.(dst) <- dst_after;
            incr transfers_done
          | Error _ -> ());
          ignore
            (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 40) (fun () -> transfer (n - 1))))
    end
  in
  transfer 60;

  (* Crash the accounts' cohort leader mid-stream. *)
  ignore
    (Sim.Engine.schedule engine ~after:(Sim.Sim_time.ms 700) (fun () ->
         let range = Partition.route (Cluster.partition cluster) (account 0) in
         match Cluster.leader_of cluster ~range with
         | Some l ->
           Format.printf "[%a] crashing the ledger's cohort leader (node %d)@." Sim.Sim_time.pp
             (Sim.Engine.now engine) l;
           Cluster.crash_node cluster l
         | None -> ()));
  Sim.Engine.run_for engine (Sim.Sim_time.sec 30);

  (* Audit the ledger with strong reads. *)
  let total = ref 0 and read_back = ref 0 in
  for i = 0 to accounts - 1 do
    let r = ref None in
    Client.get client (account i) "balance" (fun x -> r := Some x);
    let rec drive () =
      match !r with
      | Some (Ok Client.{ value = Some v; _ }) ->
        total := !total + int_of_string v;
        incr read_back
      | Some _ -> ()
      | None ->
        Sim.Engine.run_for engine (Sim.Sim_time.ms 10);
        drive ()
    in
    drive ()
  done;
  Format.printf "%d transfers committed through the failover; %d/%d accounts read back@."
    !transfers_done !read_back accounts;
  Format.printf "ledger total = %d (expected %d): %s@." !total (accounts * initial_balance)
    (if !total = accounts * initial_balance then "conserved — no partial transfer ever visible"
     else "VIOLATION");
  assert (!total = accounts * initial_balance)
